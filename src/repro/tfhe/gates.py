"""Homomorphic Boolean gates.

Every two-input gate is a fixed affine combination of the input ciphertexts
followed by a gate bootstrapping to the messages ``±1/8`` (Section 2,
``Logic[c0, c1]``).  The affine combinations follow the reference TFHE
library; e.g. a NAND gate computes ``(0, 1/8) − c_a − c_b`` and bootstraps the
result, so the output encrypts *true* unless both inputs are true.

``NOT`` and ``COPY``/``CONSTANT`` are purely linear and need no bootstrapping,
which is why the paper reports the latency of the bootstrapped gates only
(they are all dominated by the same bootstrapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from repro.tfhe.bootstrap import (
    blind_rotate_and_extract,
    blind_rotate_and_extract_batch,
    bootstrap_without_keyswitch_batch,
    context_gate_bootstrap,
    context_gate_bootstrap_batch,
    make_test_vector,
)
from repro.tfhe.keyswitch import keyswitch_apply, keyswitch_apply_batch
from repro.tfhe.keys import TFHECloudKey, TFHESecretKey
from repro.tfhe.lwe import (
    LweBatch,
    LweSample,
    gate_message,
    lwe_add,
    lwe_add_constant,
    lwe_batch_add,
    lwe_batch_decrypt_bits,
    lwe_batch_negate,
    lwe_batch_scale,
    lwe_batch_sub,
    lwe_batch_trivial,
    lwe_decrypt_bit,
    lwe_encrypt,
    lwe_encrypt_trivial,
    lwe_negate,
    lwe_scale,
    lwe_sub,
)
from repro.tfhe.lut import BooleanLutSpec, boolean_lut_spec, lut_test_vector
from repro.tfhe.torus import double_to_torus32, torus32_from_int64
from repro.utils.rng import SeedLike, make_rng

#: Gate-bootstrapping message: 1/8 on the torus.
MU = np.int32(double_to_torus32(0.125))

#: Affine combination of every plain two-input bootstrapped gate:
#: name → (offset in eighths of the torus, sign of ca, sign of cb).  Shared by
#: the scalar and the batched evaluator so the two can never diverge.
BINARY_GATE_SPECS: Dict[str, Tuple[int, int, int]] = {
    "nand": (1, -1, -1),
    "and": (-1, 1, 1),
    "or": (1, 1, 1),
    "nor": (-1, -1, -1),
    "andny": (-1, -1, 1),
    "andyn": (-1, 1, -1),
    "orny": (1, -1, 1),
    "oryn": (1, 1, -1),
}

#: Every two-input bootstrapped gate as ``name → (offset in eighths of the
#: torus, coefficient of ca, coefficient of cb)``.  XOR/XNOR fit the same
#: affine shape with coefficient ±2 (``(0, 1/4) + 2·(ca + cb)`` and its
#: negation), so a *mixed* batch of rows — each row evaluating a possibly
#: different gate — is still one affine combination followed by one batched
#: bootstrapping.  This is what lets the level-parallel circuit executor
#: issue a whole dependency level as a single call.
MIXED_GATE_SPECS: Dict[str, Tuple[int, int, int]] = {
    **BINARY_GATE_SPECS,
    "xor": (2, 2, 2),
    "xnor": (-2, -2, -2),
}


def require_lut_spec(table: int, arity: int) -> BooleanLutSpec:
    """The affine realisation of ``table`` — raises when none exists."""
    spec = boolean_lut_spec(int(table), int(arity))
    if spec is None:
        raise ValueError(
            f"truth table 0x{int(table):x} over {arity} inputs has no "
            f"single-bootstrap realisation on the ±1/8 encoding"
        )
    return spec


def lut_affine(spec: BooleanLutSpec, inputs) -> LweSample:
    """The affine combination entering a scalar lut bootstrapping."""
    inputs = list(inputs)
    if len(inputs) != spec.arity:
        raise ValueError(
            f"lut of arity {spec.arity} got {len(inputs)} operands"
        )
    combined = lwe_encrypt_trivial(
        inputs[0].dimension, np.int32(spec.offset_eighths * int(MU))
    )
    for weight, operand in zip(spec.weights, inputs):
        if weight:
            combined = lwe_add(combined, lwe_scale(weight, operand))
    return combined


def gate_affine_batch(name: str, ca: LweBatch, cb: LweBatch) -> LweBatch:
    """The affine combination entering one batched boolean gate.

    Row-for-row the same arithmetic as
    :meth:`BatchGateEvaluator.gate_rows`, exposed so mixed gate/lut batches
    can assemble their rows before one shared bootstrapping.
    """
    try:
        offset, sign_a, sign_b = MIXED_GATE_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown gate {name!r}") from None
    a = torus32_from_int64(
        np.int64(sign_a) * ca.a.astype(np.int64)
        + np.int64(sign_b) * cb.a.astype(np.int64)
    )
    b = torus32_from_int64(
        np.int64(offset) * np.int64(MU)
        + np.int64(sign_a) * ca.b.astype(np.int64)
        + np.int64(sign_b) * cb.b.astype(np.int64)
    )
    return LweBatch(a=a, b=b)


def lut_affine_batch(spec: BooleanLutSpec, inputs) -> LweBatch:
    """The affine combination entering a batched lut bootstrapping.

    Row ``i`` of the result is bit-identical to :func:`lut_affine` on row
    ``i`` of the operand batches.
    """
    inputs = list(inputs)
    if len(inputs) != spec.arity:
        raise ValueError(
            f"lut of arity {spec.arity} got {len(inputs)} operand batches"
        )
    width = inputs[0].batch_size
    a = np.zeros((width, inputs[0].dimension), dtype=np.int64)
    b = np.full(width, np.int64(spec.offset_eighths) * np.int64(MU), dtype=np.int64)
    for weight, operand in zip(spec.weights, inputs):
        if weight:
            a += np.int64(weight) * operand.a.astype(np.int64)
            b += np.int64(weight) * operand.b.astype(np.int64)
    return LweBatch(a=torus32_from_int64(a), b=torus32_from_int64(b))


def _resolve_context(key):
    """Coerce a :class:`TFHECloudKey` or an ``FheContext`` to a context.

    Duck-typed (``rotator``/``keyswitch_key``/``params``) so this module does
    not import :mod:`repro.runtime` — the runtime layer builds on the gates,
    not the reverse.  The property-backed attributes are probed on the *type*
    so the check never triggers a lazy spectrum-cache build.
    """
    if isinstance(key, TFHECloudKey):
        return key.default_context()
    if (
        hasattr(type(key), "rotator")
        and hasattr(type(key), "keyswitch_key")
        and hasattr(key, "params")
    ):
        return key
    raise TypeError(
        f"expected a TFHECloudKey or an FheContext, got {type(key).__name__}"
    )


@dataclass
class GateCounters:
    """Counts of evaluated gates and bootstrappings (for throughput reporting)."""

    gates: int = 0
    bootstraps: int = 0

    def reset(self) -> None:
        """Zero both counters (start of a measurement window)."""
        self.gates = 0
        self.bootstraps = 0


class TFHEGateEvaluator:
    """Evaluates homomorphic Boolean gates with a given cloud key.

    The evaluator is the main public entry point of the functional library::

        secret, cloud = generate_keys(TEST_SMALL, rng=1)
        evaluator = TFHEGateEvaluator(cloud)
        c = evaluator.nand(encrypt_bit(secret, 1), encrypt_bit(secret, 0))
    """

    def __init__(self, cloud_key) -> None:
        self.context = _resolve_context(cloud_key)
        self.cloud_key = self.context.cloud_key
        self.counters = GateCounters()

    # -- internal helpers --------------------------------------------------
    def _bootstrap(self, sample: LweSample) -> LweSample:
        self.counters.bootstraps += 1
        return context_gate_bootstrap(self.context, sample, int(MU))

    def _binary_gate(
        self, offset_eighths: int, ca: LweSample, cb: LweSample, sign_a: int, sign_b: int
    ) -> LweSample:
        """Generic bootstrapped gate: ``(0, offset/8) + sign_a·ca + sign_b·cb``."""
        self.counters.gates += 1
        combined = lwe_encrypt_trivial(
            ca.dimension, np.int32(offset_eighths * int(MU))
        )
        combined = lwe_add(combined, lwe_scale(sign_a, ca))
        combined = lwe_add(combined, lwe_scale(sign_b, cb))
        return self._bootstrap(combined)

    # -- linear (bootstrapping-free) gates ----------------------------------
    def constant(self, bit: int) -> LweSample:
        """A trivial (noiseless) encryption of a public constant bit."""
        self.counters.gates += 1
        return lwe_encrypt_trivial(self.context.params.n, gate_message(bit))

    def not_(self, ca: LweSample) -> LweSample:
        """Homomorphic NOT: plain negation, no bootstrapping (Section 5)."""
        self.counters.gates += 1
        return lwe_negate(ca)

    def copy(self, ca: LweSample) -> LweSample:
        """Identity gate (returns a copy of the ciphertext)."""
        self.counters.gates += 1
        return ca.copy()

    # -- bootstrapped two-input gates ---------------------------------------
    def _spec_gate(self, name: str, ca: LweSample, cb: LweSample) -> LweSample:
        offset, sign_a, sign_b = BINARY_GATE_SPECS[name]
        return self._binary_gate(offset, ca, cb, sign_a, sign_b)

    def nand(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic NAND: bootstrap of ``(0, 1/8) − ca − cb``."""
        return self._spec_gate("nand", ca, cb)

    def and_(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic AND: bootstrap of ``(0, −1/8) + ca + cb``."""
        return self._spec_gate("and", ca, cb)

    def or_(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic OR: bootstrap of ``(0, 1/8) + ca + cb``."""
        return self._spec_gate("or", ca, cb)

    def nor(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic NOR: bootstrap of ``(0, −1/8) − ca − cb``."""
        return self._spec_gate("nor", ca, cb)

    def andny(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic (NOT a) AND b."""
        return self._spec_gate("andny", ca, cb)

    def andyn(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic a AND (NOT b)."""
        return self._spec_gate("andyn", ca, cb)

    def orny(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic (NOT a) OR b."""
        return self._spec_gate("orny", ca, cb)

    def oryn(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic a OR (NOT b)."""
        return self._spec_gate("oryn", ca, cb)

    def xor(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic XOR: bootstrap of ``(0, 1/4) + 2·(ca + cb)``."""
        self.counters.gates += 1
        combined = lwe_encrypt_trivial(ca.dimension, np.int32(2 * int(MU)))
        combined = lwe_add(combined, lwe_scale(2, lwe_add(ca, cb)))
        return self._bootstrap(combined)

    def xnor(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic XNOR: bootstrap of ``(0, −1/4) − 2·(ca + cb)``."""
        self.counters.gates += 1
        combined = lwe_encrypt_trivial(ca.dimension, np.int32(-2 * int(MU)))
        combined = lwe_sub(combined, lwe_scale(2, lwe_add(ca, cb)))
        return self._bootstrap(combined)

    def mux(self, sel: LweSample, if_true: LweSample, if_false: LweSample) -> LweSample:
        """Homomorphic multiplexer ``sel ? if_true : if_false``.

        Implemented as ``OR(AND(sel, if_true), ANDNY(sel, if_false))`` — three
        bootstrapped gates.  (The TFHE library has a cheaper two-bootstrap MUX
        using an intermediate key switch; the composition used here is the
        simplest correct form.)
        """
        picked_true = self.and_(sel, if_true)
        picked_false = self.andny(sel, if_false)
        return self.or_(picked_true, picked_false)

    #: Name → bound method lookup used by the circuit examples and benches.
    GATE_NAMES = (
        "nand",
        "and",
        "or",
        "nor",
        "xor",
        "xnor",
        "andny",
        "andyn",
        "orny",
        "oryn",
    )

    def gate(self, name: str, ca: LweSample, cb: LweSample) -> LweSample:
        """Evaluate a two-input gate by name (``"nand"``, ``"xor"``, ...)."""
        if name in BINARY_GATE_SPECS:
            return self._spec_gate(name, ca, cb)
        if name == "xor":
            return self.xor(ca, cb)
        if name == "xnor":
            return self.xnor(ca, cb)
        raise ValueError(f"unknown gate {name!r}")

    def lut(self, table: int, inputs) -> LweSample:
        """Evaluate a k-input boolean LUT in one bootstrapping.

        ``table`` is the truth table (bit ``m`` is the output for the input
        combination whose bit ``i`` is ``inputs[i]``).  Raises ``ValueError``
        for tables with no single-bootstrap realisation.
        """
        inputs = list(inputs)
        spec = require_lut_spec(table, len(inputs))
        self.counters.gates += 1
        self.counters.bootstraps += 1
        combined = lut_affine(spec, inputs)
        test_vector = lut_test_vector(self.context.params, spec)
        extracted = blind_rotate_and_extract(
            combined, test_vector, self.context.rotator, self.context.params
        )
        return keyswitch_apply(self.context.keyswitch_key, extracted)


class BatchGateEvaluator:
    """Evaluates homomorphic Boolean gates over *batches* of ciphertexts.

    Every method takes :class:`repro.tfhe.lwe.LweBatch` operands of width
    ``batch_size`` and evaluates the gate on all rows with **one** batched
    bootstrapping — the affine combination, blind rotation, extraction and
    key switch are each a single vectorised NumPy pass, which amortises the
    per-gate Python overhead across the batch (the software analogue of the
    paper's amortisation of blind-rotation work across concurrent
    bootstrappings).  Row ``i`` of every output is bit-identical to running
    :class:`TFHEGateEvaluator` on row ``i`` of the inputs.

    The method names mirror :class:`TFHEGateEvaluator`, so the circuit
    building blocks of :mod:`repro.tfhe.circuits` work unchanged with either
    evaluator — with this one they process ``batch_size`` independent words
    at a time::

        evaluator = BatchGateEvaluator(cloud, batch_size=64)
        sums = circuits.add(evaluator, a_bit_planes, b_bit_planes)
    """

    def __init__(self, cloud_key, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.context = _resolve_context(cloud_key)
        self.cloud_key = self.context.cloud_key
        self.batch_size = int(batch_size)
        self.counters = GateCounters()

    # -- internal helpers --------------------------------------------------
    def _check(self, *batches: LweBatch) -> None:
        for batch in batches:
            if batch.batch_size != self.batch_size:
                raise ValueError(
                    f"operand batch width {batch.batch_size} does not match "
                    f"evaluator batch width {self.batch_size}"
                )

    def _bootstrap(self, batch: LweBatch) -> LweBatch:
        self.counters.bootstraps += batch.batch_size
        tel = getattr(self.context, "telemetry", None)
        if tel is None or not tel.tracing_active:
            return context_gate_bootstrap_batch(self.context, batch, int(MU))
        # Traced path: same computation split at the key-switch boundary so
        # each stage records its own span against the round's traces.
        with tel.stage("engine_contract", rows=batch.batch_size):
            extracted = bootstrap_without_keyswitch_batch(
                batch, int(MU), self.context.rotator, self.context.params
            )
        with tel.stage("keyswitch", rows=batch.batch_size):
            return keyswitch_apply_batch(self.context.keyswitch_key, extracted)

    def _binary_gate(
        self, offset_eighths: int, ca: LweBatch, cb: LweBatch, sign_a: int, sign_b: int
    ) -> LweBatch:
        """Generic bootstrapped gate: ``(0, offset/8) + sign_a·ca + sign_b·cb``."""
        self._check(ca, cb)
        self.counters.gates += self.batch_size
        combined = lwe_batch_trivial(
            self.batch_size, ca.dimension, np.int32(offset_eighths * int(MU))
        )
        combined = lwe_batch_add(combined, lwe_batch_scale(sign_a, ca))
        combined = lwe_batch_add(combined, lwe_batch_scale(sign_b, cb))
        return self._bootstrap(combined)

    # -- linear (bootstrapping-free) gates ----------------------------------
    def constant(self, bit: int) -> LweBatch:
        """A batch of trivial (noiseless) encryptions of a public constant bit."""
        self.counters.gates += self.batch_size
        return lwe_batch_trivial(
            self.batch_size, self.context.params.n, gate_message(bit)
        )

    def constants(self, bits) -> LweBatch:
        """Trivial encryptions of per-row public bits (shape ``(batch_size,)``)."""
        bits = np.asarray(bits, dtype=np.int64)
        if bits.shape != (self.batch_size,):
            raise ValueError("one public bit per batch row is required")
        self.counters.gates += self.batch_size
        mu = np.int64(MU)
        messages = np.where(bits != 0, mu, -mu).astype(np.int32)
        return lwe_batch_trivial(self.batch_size, self.context.params.n, messages)

    def not_(self, ca: LweBatch) -> LweBatch:
        """Homomorphic NOT: plain negation, no bootstrapping."""
        self._check(ca)
        self.counters.gates += self.batch_size
        return lwe_batch_negate(ca)

    def copy(self, ca: LweBatch) -> LweBatch:
        """Identity gate (returns a copy of the batch)."""
        self._check(ca)
        self.counters.gates += self.batch_size
        return ca.copy()

    # -- bootstrapped two-input gates ---------------------------------------
    def _spec_gate(self, name: str, ca: LweBatch, cb: LweBatch) -> LweBatch:
        offset, sign_a, sign_b = BINARY_GATE_SPECS[name]
        return self._binary_gate(offset, ca, cb, sign_a, sign_b)

    def nand(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic NAND: bootstrap of ``(0, 1/8) − ca − cb``."""
        return self._spec_gate("nand", ca, cb)

    def and_(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic AND: bootstrap of ``(0, −1/8) + ca + cb``."""
        return self._spec_gate("and", ca, cb)

    def or_(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic OR: bootstrap of ``(0, 1/8) + ca + cb``."""
        return self._spec_gate("or", ca, cb)

    def nor(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic NOR: bootstrap of ``(0, −1/8) − ca − cb``."""
        return self._spec_gate("nor", ca, cb)

    def andny(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic (NOT a) AND b."""
        return self._spec_gate("andny", ca, cb)

    def andyn(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic a AND (NOT b)."""
        return self._spec_gate("andyn", ca, cb)

    def orny(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic (NOT a) OR b."""
        return self._spec_gate("orny", ca, cb)

    def oryn(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic a OR (NOT b)."""
        return self._spec_gate("oryn", ca, cb)

    def xor(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic XOR: bootstrap of ``(0, 1/4) + 2·(ca + cb)``."""
        self._check(ca, cb)
        self.counters.gates += self.batch_size
        combined = lwe_batch_trivial(self.batch_size, ca.dimension, np.int32(2 * int(MU)))
        combined = lwe_batch_add(combined, lwe_batch_scale(2, lwe_batch_add(ca, cb)))
        return self._bootstrap(combined)

    def xnor(self, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Batched homomorphic XNOR: bootstrap of ``(0, −1/4) − 2·(ca + cb)``."""
        self._check(ca, cb)
        self.counters.gates += self.batch_size
        combined = lwe_batch_trivial(self.batch_size, ca.dimension, np.int32(-2 * int(MU)))
        combined = lwe_batch_sub(combined, lwe_batch_scale(2, lwe_batch_add(ca, cb)))
        return self._bootstrap(combined)

    def mux(self, sel: LweBatch, if_true: LweBatch, if_false: LweBatch) -> LweBatch:
        """Batched homomorphic multiplexer ``sel ? if_true : if_false``.

        Same three-bootstrapped-gate composition as the scalar evaluator:
        ``OR(AND(sel, if_true), ANDNY(sel, if_false))``.
        """
        picked_true = self.and_(sel, if_true)
        picked_false = self.andny(sel, if_false)
        return self.or_(picked_true, picked_false)

    def gate(self, name: str, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Evaluate a two-input gate by name (``"nand"``, ``"xor"``, ...)."""
        if name in BINARY_GATE_SPECS:
            return self._spec_gate(name, ca, cb)
        if name == "xor":
            return self.xor(ca, cb)
        if name == "xnor":
            return self.xnor(ca, cb)
        raise ValueError(f"unknown gate {name!r}")

    def gate_rows(self, names, ca: LweBatch, cb: LweBatch) -> LweBatch:
        """Evaluate a possibly *different* gate on every row — one bootstrapping.

        ``names[i]`` picks the gate applied to row ``i`` of ``ca``/``cb``
        (any key of :data:`MIXED_GATE_SPECS`, i.e. every two-input
        bootstrapped gate including XOR/XNOR).  The per-row affine
        combinations are a single vectorised pass and the whole mixed batch
        shares one batched bootstrapping, so a dependency level of a circuit
        — whose gates are independent but heterogeneous — costs the same as a
        homogeneous batch of equal width.

        Unlike the homogeneous methods this entry point accepts **any** row
        count, not just ``self.batch_size``: the level-parallel executor
        packs ``gates_in_level × words`` rows per call, which varies level to
        level.  Row ``i`` of the result is bit-identical to calling the
        scalar evaluator's gate ``names[i]`` on row ``i`` of the inputs.
        """
        names = list(names)
        if ca.batch_size != cb.batch_size:
            raise ValueError("operand batches must have the same width")
        if len(names) != ca.batch_size:
            raise ValueError("one gate name per row is required")
        try:
            specs = [MIXED_GATE_SPECS[name] for name in names]
        except KeyError as exc:
            raise ValueError(f"unknown gate {exc.args[0]!r}") from None
        offsets = np.array([s[0] for s in specs], dtype=np.int64)
        coef_a = np.array([s[1] for s in specs], dtype=np.int64)
        coef_b = np.array([s[2] for s in specs], dtype=np.int64)
        a = torus32_from_int64(
            coef_a[:, None] * ca.a.astype(np.int64)
            + coef_b[:, None] * cb.a.astype(np.int64)
        )
        b = torus32_from_int64(
            offsets * np.int64(MU)
            + coef_a * ca.b.astype(np.int64)
            + coef_b * cb.b.astype(np.int64)
        )
        self.counters.gates += ca.batch_size
        return self._bootstrap(LweBatch(a=a, b=b))

    def bootstrap_rows(self, combined: LweBatch, test_vectors: np.ndarray) -> LweBatch:
        """One fused blind rotation where every row owns its test vector.

        ``test_vectors`` is a ``(B, N)`` stack (or one shared ``(N,)``
        polynomial); this is the primitive underneath every mixed batch —
        boolean-gate rows next to lut rows, each refreshed against its own
        lookup table, all inside a single batched
        blind-rotate/extract/key-switch pass.  Like :meth:`gate_rows` it
        accepts any row count, not just ``self.batch_size``.
        """
        self.counters.bootstraps += combined.batch_size
        tel = getattr(self.context, "telemetry", None)
        if tel is None or not tel.tracing_active:
            extracted = blind_rotate_and_extract_batch(
                combined, test_vectors, self.context.rotator, self.context.params
            )
            return keyswitch_apply_batch(self.context.keyswitch_key, extracted)
        with tel.stage("engine_contract", rows=combined.batch_size):
            extracted = blind_rotate_and_extract_batch(
                combined, test_vectors, self.context.rotator, self.context.params
            )
        with tel.stage("keyswitch", rows=combined.batch_size):
            return keyswitch_apply_batch(self.context.keyswitch_key, extracted)

    def lut(self, table: int, inputs) -> LweBatch:
        """Evaluate a k-input boolean LUT on every row in one bootstrapping."""
        inputs = list(inputs)
        spec = require_lut_spec(table, len(inputs))
        self._check(*inputs)
        self.counters.gates += self.batch_size
        combined = lut_affine_batch(spec, inputs)
        return self.bootstrap_rows(
            combined, lut_test_vector(self.context.params, spec)
        )

    def gate_test_vector(self) -> np.ndarray:
        """The shared all-``mu`` test vector of the plain boolean gates."""
        return make_test_vector(self.context.params, int(MU))


def encrypt_bit(secret: TFHESecretKey, bit: int, rng: SeedLike = None) -> LweSample:
    """Client-side encryption of one Boolean as a gate-bootstrapping ciphertext."""
    rng = make_rng(rng)
    return lwe_encrypt(secret.lwe_key, gate_message(bit), rng=rng)


def decrypt_bit(secret: TFHESecretKey, sample: LweSample) -> int:
    """Client-side decryption of a gate-bootstrapping ciphertext."""
    return lwe_decrypt_bit(secret.lwe_key, sample)


def encrypt_bits(secret: TFHESecretKey, bits, rng: SeedLike = None):
    """Encrypt an iterable of bits (least-significant first for integers)."""
    rng = make_rng(rng)
    return [encrypt_bit(secret, int(b), rng) for b in bits]


def decrypt_bits(secret: TFHESecretKey, samples):
    """Decrypt a list of ciphertexts back to a list of bits."""
    return [decrypt_bit(secret, s) for s in samples]


def encrypt_bit_batch(secret: TFHESecretKey, bits, rng: SeedLike = None) -> LweBatch:
    """Encrypt an iterable of bits as one :class:`LweBatch` (one row per bit)."""
    rng = make_rng(rng)
    return LweBatch.from_samples(encrypt_bit(secret, int(b), rng) for b in bits)


def decrypt_bit_batch(secret: TFHESecretKey, batch: LweBatch):
    """Decrypt a batch of gate-bootstrapping ciphertexts to a list of bits."""
    return [int(b) for b in lwe_batch_decrypt_bits(secret.lwe_key, batch)]


#: Plaintext truth tables used by the test-suite to check every gate.
PLAINTEXT_GATES: Dict[str, Callable[[int, int], int]] = {
    "nand": lambda a, b: 1 - (a & b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "nor": lambda a, b: 1 - (a | b),
    "xor": lambda a, b: a ^ b,
    "xnor": lambda a, b: 1 - (a ^ b),
    "andny": lambda a, b: (1 - a) & b,
    "andyn": lambda a, b: a & (1 - b),
    "orny": lambda a, b: (1 - a) | b,
    "oryn": lambda a, b: a | (1 - b),
}

"""TGSW samples, gadget decomposition and the external product.

TGSW is the matrix extension of TLWE (Section 2): a TGSW sample of a message
``mu`` is a stack of ``(k+1)·l`` TLWE encryptions of zero to which the gadget
``mu·h`` is added, where ``h`` is the gadget matrix whose rows contain the
constants ``1/Bg, 1/Bg^2, ..., 1/Bg^l`` in each of the ``k+1`` polynomial
positions.

The *external product* ``⊡ : TGSW × TLWE → TLWE`` multiplies the messages of
its operands; it is the homomorphic CMux/blind-rotation workhorse of
Algorithm 1 line 7 and by far the dominant computation of a TFHE gate, since
each external product performs ``(k+1)·l`` forward transforms and ``k+1``
backward transforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.tfhe.params import TgswParams, TlweParams
from repro.tfhe.tlwe import TlweBatch, TlweKey, TlweSample, tlwe_encrypt, tlwe_zero
from repro.tfhe.torus import torus32_from_int64
from repro.tfhe.transform import NegacyclicTransform, Spectrum
from repro.utils.rng import SeedLike, make_rng


@dataclass
class TgswSample:
    """A TGSW ciphertext: ``(k+1)·l`` TLWE rows of ``k+1`` polynomials each.

    ``data`` has shape ``((k+1)·l, k+1, N)``.
    """

    data: np.ndarray
    params: TgswParams

    @property
    def rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def mask_count(self) -> int:
        return int(self.data.shape[1]) - 1

    @property
    def degree(self) -> int:
        return int(self.data.shape[2])

    def copy(self) -> "TgswSample":
        return TgswSample(self.data.copy(), self.params)


@dataclass
class TransformedTgswSample:
    """A TGSW sample whose polynomials are kept in the Lagrange domain.

    Bootstrapping keys are transformed once at key-generation time; the
    blind-rotation loop then only transforms the (small) decomposed
    accumulator polynomials.  ``spectra[row][col]`` is the spectrum of the
    corresponding polynomial of the coefficient-domain sample.
    """

    spectra: List[List[Spectrum]]
    params: TgswParams
    mask_count: int
    degree: int

    @property
    def rows(self) -> int:
        return len(self.spectra)


def gadget_values(params: TgswParams) -> np.ndarray:
    """The torus constants ``Bg^{-1}, ..., Bg^{-l}`` of the gadget matrix."""
    shifts = [32 - params.decomp_base_bits * (j + 1) for j in range(params.decomp_length)]
    return np.array(
        [(1 << s) if s >= 0 else 0 for s in shifts], dtype=np.int64
    ).astype(np.uint32).astype(np.int32)


def decomposition_offset(params: TgswParams) -> int:
    """The rounding offset added before digit extraction (TFHE's ``offset``)."""
    offset = 0
    base_bits = params.decomp_base_bits
    half_base = 1 << (base_bits - 1)
    for j in range(1, params.decomp_length + 1):
        shift = 32 - j * base_bits
        if shift >= 0:
            offset += half_base << shift
    return offset & 0xFFFFFFFF


def gadget_decompose(
    poly: np.ndarray, params: TgswParams
) -> np.ndarray:
    """Signed gadget decomposition of a torus polynomial.

    Returns an ``(l, N)`` int32 array of digits in ``[-Bg/2, Bg/2)`` such that
    ``Σ_j digits[j]·Bg^{-j-1}`` approximates every coefficient of ``poly`` up
    to the decomposition rounding error ``<= Bg^{-l}/2``.

    ``poly`` may be a stack ``(..., N)``; the digit array then has shape
    ``(l, ..., N)`` so ``digits[j]`` is the ``j``-th digit plane of the whole
    stack.
    """
    base_bits = params.decomp_base_bits
    mask = (1 << base_bits) - 1
    half_base = 1 << (base_bits - 1)
    offset = decomposition_offset(params)

    poly = np.asarray(poly)
    shifted = (poly.astype(np.int64) & 0xFFFFFFFF) + offset
    digits = np.empty((params.decomp_length,) + poly.shape, dtype=np.int32)
    for j in range(params.decomp_length):
        shift = 32 - (j + 1) * base_bits
        digits[j] = (((shifted >> shift) & mask) - half_base).astype(np.int32)
    return digits


def gadget_recompose(digits: np.ndarray, params: TgswParams) -> np.ndarray:
    """Recompose decomposition digits back onto the torus (for testing)."""
    gadget = gadget_values(params).astype(np.int64)
    total = np.zeros(digits.shape[1:], dtype=np.int64)
    for j in range(params.decomp_length):
        total += digits[j].astype(np.int64) * gadget[j]
    return torus32_from_int64(total)


def tgsw_encrypt_zero(
    key: TlweKey,
    params: TgswParams,
    transform: NegacyclicTransform,
    noise_stddev: float | None = None,
    rng: SeedLike = None,
) -> TgswSample:
    """A TGSW encryption of zero: a stack of TLWE encryptions of zero."""
    rng = make_rng(rng)
    tlwe_params = key.params
    rows = (tlwe_params.mask_count + 1) * params.decomp_length
    zero_message = np.zeros(tlwe_params.degree, dtype=np.int32)
    data = np.zeros(
        (rows, tlwe_params.mask_count + 1, tlwe_params.degree), dtype=np.int32
    )
    for row in range(rows):
        sample = tlwe_encrypt(key, zero_message, transform, noise_stddev, rng)
        data[row] = sample.data
    return TgswSample(data=data, params=params)


def tgsw_add_gadget(sample: TgswSample, message: int) -> TgswSample:
    """Add ``message·h`` (the scaled gadget matrix) to a TGSW encryption of zero.

    ``message`` is a small integer (the bootstrapping keys encrypt secret-key
    bits and bit products, so it is 0 or 1).
    """
    params = sample.params
    k = sample.mask_count
    gadget = gadget_values(params).astype(np.int64)
    data = sample.data.copy()
    for block in range(k + 1):
        for j in range(params.decomp_length):
            row = block * params.decomp_length + j
            data[row, block, 0] = np.int32(
                torus32_from_int64(
                    data[row, block, 0].astype(np.int64) + int(message) * gadget[j]
                )
            )
    return TgswSample(data=data, params=params)


def tgsw_encrypt(
    key: TlweKey,
    message: int,
    params: TgswParams,
    transform: NegacyclicTransform,
    noise_stddev: float | None = None,
    rng: SeedLike = None,
) -> TgswSample:
    """TGSW encryption of a small integer message (0 or 1 for bootstrapping keys)."""
    zero = tgsw_encrypt_zero(key, params, transform, noise_stddev, rng)
    return tgsw_add_gadget(zero, message)


def tgsw_identity(
    tlwe_params: TlweParams, params: TgswParams
) -> TgswSample:
    """The noiseless gadget matrix ``h`` itself (a trivial TGSW sample of 1).

    The BKU bundle construction of Figure 5 starts from ``h`` ("+1" term) and
    adds the scaled bootstrapping keys to it.
    """
    rows = (tlwe_params.mask_count + 1) * params.decomp_length
    data = np.zeros(
        (rows, tlwe_params.mask_count + 1, tlwe_params.degree), dtype=np.int32
    )
    sample = TgswSample(data=data, params=params)
    return tgsw_add_gadget(sample, 1)


def tgsw_transform(
    sample: TgswSample, transform: NegacyclicTransform
) -> TransformedTgswSample:
    """Move every polynomial of a TGSW sample into the Lagrange domain.

    The whole ``(rows, k+1, N)`` stack goes through **one** vectorised
    ``forward`` call (one engine invocation per TGSW sample instead of one
    per polynomial), then the stacked spectrum is sliced back into the
    per-row/per-column layout the external product consumes.  Per-polynomial
    results are bit-identical to transforming each polynomial on its own
    (the engines' documented batch semantics).
    """
    stacked = transform.forward(sample.data)
    spectra: List[List[Spectrum]] = [
        [
            transform.spectrum_index(stacked, (row, col))
            for col in range(sample.mask_count + 1)
        ]
        for row in range(sample.rows)
    ]
    return TransformedTgswSample(
        spectra=spectra,
        params=sample.params,
        mask_count=sample.mask_count,
        degree=sample.degree,
    )


def _external_product_data(
    tgsw: TransformedTgswSample,
    data: np.ndarray,
    transform: NegacyclicTransform,
) -> np.ndarray:
    """Shared external-product core on raw TLWE coefficient arrays.

    ``data`` has shape ``(..., k+1, N)`` — a single sample or a batch.  The
    TGSW operand's spectra may themselves carry batch axes (a batched BKU
    bundle); operand batch axes broadcast inside the spectrum algebra.
    """
    params = tgsw.params
    k = tgsw.mask_count
    degree = tgsw.degree

    decomposed: List[np.ndarray] = []
    for block in range(k + 1):
        digits = gadget_decompose(data[..., block, :], params)
        decomposed.extend(digits[j] for j in range(params.decomp_length))

    dec_spectra = [transform.forward(d) for d in decomposed]

    result = np.zeros(data.shape[:-2] + (k + 1, degree), dtype=np.int32)
    for col in range(k + 1):
        acc = transform.spectrum_zero()
        for row in range(tgsw.rows):
            acc = transform.spectrum_add(
                acc, transform.spectrum_mul(dec_spectra[row], tgsw.spectra[row][col])
            )
        result[..., col, :] = torus32_from_int64(transform.backward(acc))
    return result


def tgsw_external_product(
    tgsw: TransformedTgswSample,
    tlwe: TlweSample,
    transform: NegacyclicTransform,
) -> TlweSample:
    """The external product ``TGSW ⊡ TLWE → TLWE`` (Algorithm 1 line 7).

    The TLWE operand is gadget-decomposed into ``(k+1)·l`` small integer
    polynomials; each is transformed, multiplied with the corresponding row of
    the (pre-transformed) TGSW operand and accumulated in the Lagrange domain;
    one backward transform per output polynomial produces the result.
    """
    k = tgsw.mask_count
    if tlwe.degree != tgsw.degree or tlwe.mask_count != k:
        raise ValueError("TGSW and TLWE operands are incompatible")
    return TlweSample(_external_product_data(tgsw, tlwe.data, transform))


def tgsw_batch_external_product(
    tgsw: TransformedTgswSample,
    tlwe: TlweBatch,
    transform: NegacyclicTransform,
) -> TlweBatch:
    """Batched external product: one call covers a whole stack of accumulators.

    The decomposition, forward transforms, Lagrange-domain accumulation and
    backward transforms all run once over the batch axis; the result is
    bit-identical to applying :func:`tgsw_external_product` per ciphertext.
    """
    k = tgsw.mask_count
    if tlwe.degree != tgsw.degree or tlwe.mask_count != k:
        raise ValueError("TGSW and TLWE operands are incompatible")
    return TlweBatch(_external_product_data(tgsw, tlwe.data, transform))


def tgsw_external_product_plain(
    tgsw: TgswSample,
    tlwe: TlweSample,
    transform: NegacyclicTransform,
) -> TlweSample:
    """External product with a coefficient-domain TGSW operand (convenience)."""
    return tgsw_external_product(tgsw_transform(tgsw, transform), tlwe, transform)


def tgsw_cmux(
    selector: TransformedTgswSample,
    if_true: TlweSample,
    if_false: TlweSample,
    transform: NegacyclicTransform,
) -> TlweSample:
    """Homomorphic multiplexer: returns ``if_true`` when the selector encrypts 1.

    ``CMux(C, d1, d0) = C ⊡ (d1 - d0) + d0``.  The classical (non-unrolled)
    blind rotation is a chain of CMux operations.
    """
    from repro.tfhe.tlwe import tlwe_add, tlwe_sub

    difference = tlwe_sub(if_true, if_false)
    product = tgsw_external_product(selector, difference, transform)
    return tlwe_add(product, if_false)


def tgsw_batch_cmux(
    selector: TransformedTgswSample,
    if_true: TlweBatch,
    if_false: TlweBatch,
    transform: NegacyclicTransform,
) -> TlweBatch:
    """Batched CMux over stacks of TLWE ciphertexts (one selector for all rows)."""
    from repro.tfhe.tlwe import tlwe_batch_add, tlwe_batch_sub

    difference = tlwe_batch_sub(if_true, if_false)
    product = tgsw_batch_external_product(selector, difference, transform)
    return tlwe_batch_add(product, if_false)

"""TGSW samples, gadget decomposition and the external product.

TGSW is the matrix extension of TLWE (Section 2): a TGSW sample of a message
``mu`` is a stack of ``(k+1)·l`` TLWE encryptions of zero to which the gadget
``mu·h`` is added, where ``h`` is the gadget matrix whose rows contain the
constants ``1/Bg, 1/Bg^2, ..., 1/Bg^l`` in each of the ``k+1`` polynomial
positions.

The *external product* ``⊡ : TGSW × TLWE → TLWE`` multiplies the messages of
its operands; it is the homomorphic CMux/blind-rotation workhorse of
Algorithm 1 line 7 and by far the dominant computation of a TFHE gate, since
each external product performs ``(k+1)·l`` (logical) forward transforms and
``k+1`` (logical) backward transforms.

Fused kernel
------------

The external product runs as **one** fused kernel: all ``k+1`` blocks of the
TLWE operand gadget-decompose into a single ``((k+1)·l, ..., N)`` digit
stack, the stack goes through one stacked ``forward``, one
``spectrum_contract`` against the TGSW operand's packed
``(rows, ..., k+1, N/2)`` spectral tensor, and one stacked ``backward``
produces every output column at once
(:meth:`repro.tfhe.transform.NegacyclicTransform.contract_accumulate`).
Scratch arrays stage through a reusable :class:`BootstrapWorkspace` so the
``n``-step blind-rotation loop allocates no per-step decomposition buffers.
The engine counters are topped up to the *logical* per-polynomial transform
counts after each fused call, so the Figure-1 FFT/IFFT breakdown reports the
same numbers as the historical per-digit-plane loop — which is preserved
verbatim as :func:`tgsw_external_product_reference` (the property-test and
benchmark ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tfhe.params import TgswParams, TlweParams
from repro.tfhe.tlwe import (
    TlweBatch,
    TlweKey,
    TlweSample,
    tlwe_batch_mul_by_xk_minus_one,
    tlwe_encrypt,
)
from repro.tfhe.torus import torus32_from_int64
from repro.tfhe.transform import NegacyclicTransform, Spectrum
from repro.utils.rng import SeedLike, make_rng


@dataclass
class TgswSample:
    """A TGSW ciphertext: ``(k+1)·l`` TLWE rows of ``k+1`` polynomials each.

    ``data`` has shape ``((k+1)·l, k+1, N)``.
    """

    data: np.ndarray
    params: TgswParams

    @property
    def rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def mask_count(self) -> int:
        return int(self.data.shape[1]) - 1

    @property
    def degree(self) -> int:
        return int(self.data.shape[2])

    def copy(self) -> "TgswSample":
        return TgswSample(self.data.copy(), self.params)


@dataclass
class TransformedTgswSample:
    """A TGSW sample kept in the Lagrange domain as one packed spectral tensor.

    Bootstrapping keys are transformed once at key-generation time; the
    blind-rotation loop then only transforms the (small) decomposed
    accumulator polynomials.  ``tensor`` is a single stacked spectrum of
    shape ``(rows, ..., k+1, N/2)``: gadget rows leading (row
    ``block·l + j`` holds digit ``j`` of block ``block``), optional batch
    axes in the middle (batched BKU bundles carry one bundle per in-flight
    ciphertext), the output-column axis second to last and the spectral axis
    last.  This is exactly the layout one stacked ``forward`` over the
    coefficient-domain ``(rows, k+1, N)`` data produces, and the layout
    :meth:`repro.tfhe.transform.NegacyclicTransform.spectrum_contract`
    consumes — no per-row/per-column Python lists anywhere on the hot path.

    The historical per-polynomial view is recoverable through
    ``transform.spectrum_take_col(transform.spectrum_index(tensor, row), col)``
    (what the reference external product uses).
    """

    tensor: Spectrum
    params: TgswParams
    mask_count: int
    degree: int
    rows: int


class BootstrapWorkspace:
    """Reusable scratch buffers for the fused external-product kernel.

    One workspace amortises the decomposition scratch arrays (the int64
    shifted/digit temporaries and the int32 digit stack) across every
    external product that shares it: all ``n`` steps of a blind rotation,
    every gate of an evaluator, and every flush of a batch scheduler reuse
    the same buffers instead of allocating fresh ones per step.

    Lifetime / reuse rules:

    * buffers are keyed by shape — mixing scalar and batched external
      products (or different batch widths) through one workspace is safe,
      each shape gets its own buffer set, and at most :attr:`MAX_SHAPES`
      shapes are held at once (oldest evicted);
    * workspace memory is only ever *input* scratch: every kernel output is
      freshly allocated by the engines, so results never alias workspace
      buffers and remain valid after later calls reuse the workspace;
    * a workspace is **not** thread-safe — share it within one evaluation
      context (as :class:`repro.runtime.context.FheContext` does), not across
      concurrently evaluating contexts.
    """

    __slots__ = ("_decompose",)

    #: Max distinct shapes cached per workspace.  A long-lived context can see
    #: many batch widths over its lifetime (scheduler flushes vary with load);
    #: beyond this bound the oldest shape's buffers are dropped so scratch
    #: memory stays proportional to the active working set instead of growing
    #: with every width ever seen.
    MAX_SHAPES = 8

    def __init__(self) -> None:
        self._decompose: Dict[Tuple[Tuple[int, ...], int], Tuple[np.ndarray, ...]] = {}

    def decompose_buffers(
        self, data_shape: Tuple[int, ...], length: int, rows: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The ``(shifted, scratch, digits, offset)`` buffers of the fused kernel.

        One dict hit per external product (the decomposition is the hot
        loop).  At most :attr:`MAX_SHAPES` shape entries are kept
        (oldest-inserted evicted first — no recency bookkeeping on the hot
        path).
        """
        key = (data_shape, length)
        entry = self._decompose.get(key)
        if entry is None:
            batch = data_shape[:-2]
            degree = data_shape[-1]
            entry = (
                np.empty(data_shape, dtype=np.uint32),
                np.empty((length,) + data_shape, dtype=np.uint32),
                np.empty((rows,) + batch + (degree,), dtype=np.int32),
                np.empty(data_shape, dtype=np.uint32),
            )
            if len(self._decompose) >= self.MAX_SHAPES:
                self._decompose.pop(next(iter(self._decompose)))
            self._decompose[key] = entry
        return entry

    @property
    def buffer_count(self) -> int:
        """Number of distinct buffers currently held (for tests/telemetry)."""
        return 4 * len(self._decompose)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the workspace."""
        return sum(
            buffer.nbytes for entry in self._decompose.values() for buffer in entry
        )


def gadget_values(params: TgswParams) -> np.ndarray:
    """The torus constants ``Bg^{-1}, ..., Bg^{-l}`` of the gadget matrix."""
    shifts = [32 - params.decomp_base_bits * (j + 1) for j in range(params.decomp_length)]
    return np.array(
        [(1 << s) if s >= 0 else 0 for s in shifts], dtype=np.int64
    ).astype(np.uint32).astype(np.int32)


def decomposition_offset(params: TgswParams) -> int:
    """The rounding offset added before digit extraction (TFHE's ``offset``)."""
    offset = 0
    base_bits = params.decomp_base_bits
    half_base = 1 << (base_bits - 1)
    for j in range(1, params.decomp_length + 1):
        shift = 32 - j * base_bits
        if shift >= 0:
            offset += half_base << shift
    return offset & 0xFFFFFFFF


def gadget_decompose(
    poly: np.ndarray, params: TgswParams
) -> np.ndarray:
    """Signed gadget decomposition of a torus polynomial.

    Returns an ``(l, N)`` int32 array of digits in ``[-Bg/2, Bg/2)`` such that
    ``Σ_j digits[j]·Bg^{-j-1}`` approximates every coefficient of ``poly`` up
    to the decomposition rounding error ``<= Bg^{-l}/2``.

    ``poly`` may be a stack ``(..., N)``; the digit array then has shape
    ``(l, ..., N)`` so ``digits[j]`` is the ``j``-th digit plane of the whole
    stack.
    """
    base_bits = params.decomp_base_bits
    mask = (1 << base_bits) - 1
    half_base = 1 << (base_bits - 1)
    offset = decomposition_offset(params)

    poly = np.asarray(poly)
    shifted = (poly.astype(np.int64) & 0xFFFFFFFF) + offset
    digits = np.empty((params.decomp_length,) + poly.shape, dtype=np.int32)
    for j in range(params.decomp_length):
        shift = 32 - (j + 1) * base_bits
        digits[j] = (((shifted >> shift) & mask) - half_base).astype(np.int32)
    return digits


#: Identity-keyed fast path over :func:`_decompose_constants` — parameter-set
#: objects are module-level singletons, so an ``id`` probe skips the dataclass
#: hash on the blind-rotation hot loop (the value-keyed cache stays the source
#: of truth, so equal params still share constants).  Bounded: a server that
#: deserializes a fresh params object per client key must not pin every one of
#: them forever.
_DECOMPOSE_CONSTANTS_BY_ID: Dict[int, Tuple[TgswParams, tuple]] = {}
_DECOMPOSE_CONSTANTS_BY_ID_MAX = 64


def _decompose_constants_for(params: TgswParams) -> tuple:
    entry = _DECOMPOSE_CONSTANTS_BY_ID.get(id(params))
    if entry is None or entry[0] is not params:
        entry = (params, _decompose_constants(params))
        if len(_DECOMPOSE_CONSTANTS_BY_ID) >= _DECOMPOSE_CONSTANTS_BY_ID_MAX:
            _DECOMPOSE_CONSTANTS_BY_ID.pop(next(iter(_DECOMPOSE_CONSTANTS_BY_ID)))
        _DECOMPOSE_CONSTANTS_BY_ID[id(params)] = entry
    return entry[1]


@lru_cache(maxsize=32)
def _decompose_constants(params: TgswParams):
    """Cached uint32 constants of the gadget decomposition of one parameter set."""
    base_bits = params.decomp_base_bits
    shifts = np.array(
        [32 - (j + 1) * base_bits for j in range(params.decomp_length)],
        dtype=np.uint32,
    )
    shifts.setflags(write=False)
    return (
        np.uint32(decomposition_offset(params)),
        shifts,
        np.uint32((1 << base_bits) - 1),
        np.uint32(1 << (base_bits - 1)),
    )


def gadget_decompose_rows(
    data: np.ndarray,
    params: TgswParams,
    workspace: Optional[BootstrapWorkspace] = None,
) -> np.ndarray:
    """Gadget-decompose every block of a TLWE data array into one digit stack.

    ``data`` has shape ``(..., k+1, N)`` (a sample or a batch); the result is
    the ``((k+1)·l, ..., N)`` int32 stack the fused external product feeds to
    one stacked ``forward``, with row ``block·l + j`` holding digit ``j`` of
    block ``block`` — the gadget row order of :class:`TgswSample`.

    All digit planes extract in **one** broadcast shift/mask/subtract over a
    ``(l, ..., k+1, N)`` scratch tensor, entirely in uint32 — bit-identical
    to the reference int64 path of :func:`gadget_decompose` per block: the
    offset-add carry past bit 31 only ever reaches digit positions the
    per-digit mask discards, and the ``− Bg/2`` wrap-around reinterprets as
    exactly the signed digit.  With a :class:`BootstrapWorkspace` the scratch
    tensors and the digit stack itself are reused across calls of the same
    shape (the stack is pure input scratch — the engines copy it during
    ``forward``).
    """
    data = np.asarray(data)
    blocks = int(data.shape[-2])
    degree = int(data.shape[-1])
    batch = data.shape[:-2]
    length = params.decomp_length
    rows = blocks * length
    offset, shifts, mask, half_base = _decompose_constants_for(params)

    if workspace is None:
        shifted = np.empty(data.shape, dtype=np.uint32)
        scratch = np.empty((length,) + data.shape, dtype=np.uint32)
        digits = np.empty((rows,) + batch + (degree,), dtype=np.int32)
    else:
        shifted, scratch, digits, _ = workspace.decompose_buffers(
            data.shape, length, rows
        )

    np.add(data.view(np.uint32), offset, out=shifted)
    _extract_digit_planes(shifted, scratch, digits, shifts, mask, half_base)
    return digits


def _extract_digit_planes(
    shifted: np.ndarray,
    scratch: np.ndarray,
    digits: np.ndarray,
    shifts: np.ndarray,
    mask: np.uint32,
    half_base: np.uint32,
) -> None:
    """Shared digit-extraction tail of the fused decomposition.

    ``shifted`` holds the offset-added uint32 coefficients ``(..., k+1, N)``;
    every digit plane extracts in one broadcast shift/mask/subtract into
    ``scratch`` ``(l, ..., k+1, N)`` and lands in the ``(rows, ..., N)``
    ``digits`` stack (row ``block·l + j``) through one strided copy — both
    reorderings are views.
    """
    length = scratch.shape[0]
    blocks = shifted.shape[-2]
    degree = shifted.shape[-1]
    batch = shifted.shape[:-2]
    np.right_shift(shifted, shifts.reshape((length,) + (1,) * shifted.ndim), out=scratch)
    scratch &= mask
    scratch -= half_base
    ndim = scratch.ndim
    planes = scratch.view(np.int32).transpose(
        (ndim - 2, 0, *range(1, ndim - 2), ndim - 1)
    )
    digits.reshape((blocks, length) + batch + (degree,))[...] = planes


def _decompose_rotated_difference(
    data: np.ndarray,
    power: int,
    params: TgswParams,
    workspace: Optional[BootstrapWorkspace],
) -> np.ndarray:
    """Digit stack of ``(X^power − 1)·data``, with the rotation fused in.

    The blind-rotation step's rotate-and-subtract feeds the decomposition's
    offset-shifted buffer directly: with ``off = offset − data`` (one pass,
    all mod 2^32), the negacyclic gather segments add or subtract straight
    into the shifted buffer, so **no difference polynomial is ever
    materialised**.  Bit-identical to
    ``gadget_decompose_rows(poly_mul_by_xk_minus_one(data, power), ...)``.
    """
    degree = int(data.shape[-1])
    blocks = int(data.shape[-2])
    length = params.decomp_length
    rows = blocks * length
    offset, shifts, mask, half_base = _decompose_constants_for(params)

    if workspace is None:
        shifted = np.empty(data.shape, dtype=np.uint32)
        scratch = np.empty((length,) + data.shape, dtype=np.uint32)
        digits = np.empty((rows,) + data.shape[:-2] + (degree,), dtype=np.int32)
        off_acc = np.empty(data.shape, dtype=np.uint32)
    else:
        shifted, scratch, digits, off_acc = workspace.decompose_buffers(
            data.shape, length, rows
        )

    unsigned = data.view(np.uint32)
    np.subtract(offset, unsigned, out=off_acc)
    power = int(power) % (2 * degree)
    shift = power % degree
    negate_all = power >= degree
    if shift:
        head = unsigned[..., degree - shift :]
        tail = unsigned[..., : degree - shift]
        if negate_all:
            np.add(off_acc[..., :shift], head, out=shifted[..., :shift])
            np.subtract(off_acc[..., shift:], tail, out=shifted[..., shift:])
        else:
            np.subtract(off_acc[..., :shift], head, out=shifted[..., :shift])
            np.add(off_acc[..., shift:], tail, out=shifted[..., shift:])
    elif negate_all:
        np.subtract(off_acc, unsigned, out=shifted)
    else:
        np.add(off_acc, unsigned, out=shifted)
    _extract_digit_planes(shifted, scratch, digits, shifts, mask, half_base)
    return digits


def gadget_recompose(digits: np.ndarray, params: TgswParams) -> np.ndarray:
    """Recompose decomposition digits back onto the torus (for testing)."""
    gadget = gadget_values(params).astype(np.int64)
    total = np.zeros(digits.shape[1:], dtype=np.int64)
    for j in range(params.decomp_length):
        total += digits[j].astype(np.int64) * gadget[j]
    return torus32_from_int64(total)


def tgsw_encrypt_zero(
    key: TlweKey,
    params: TgswParams,
    transform: NegacyclicTransform,
    noise_stddev: float | None = None,
    rng: SeedLike = None,
) -> TgswSample:
    """A TGSW encryption of zero: a stack of TLWE encryptions of zero."""
    rng = make_rng(rng)
    tlwe_params = key.params
    rows = (tlwe_params.mask_count + 1) * params.decomp_length
    zero_message = np.zeros(tlwe_params.degree, dtype=np.int32)
    data = np.zeros(
        (rows, tlwe_params.mask_count + 1, tlwe_params.degree), dtype=np.int32
    )
    for row in range(rows):
        sample = tlwe_encrypt(key, zero_message, transform, noise_stddev, rng)
        data[row] = sample.data
    return TgswSample(data=data, params=params)


def tgsw_add_gadget(sample: TgswSample, message: int) -> TgswSample:
    """Add ``message·h`` (the scaled gadget matrix) to a TGSW encryption of zero.

    ``message`` is a small integer (the bootstrapping keys encrypt secret-key
    bits and bit products, so it is 0 or 1).
    """
    params = sample.params
    k = sample.mask_count
    gadget = gadget_values(params).astype(np.int64)
    data = sample.data.copy()
    for block in range(k + 1):
        for j in range(params.decomp_length):
            row = block * params.decomp_length + j
            data[row, block, 0] = np.int32(
                torus32_from_int64(
                    data[row, block, 0].astype(np.int64) + int(message) * gadget[j]
                )
            )
    return TgswSample(data=data, params=params)


def tgsw_encrypt(
    key: TlweKey,
    message: int,
    params: TgswParams,
    transform: NegacyclicTransform,
    noise_stddev: float | None = None,
    rng: SeedLike = None,
) -> TgswSample:
    """TGSW encryption of a small integer message (0 or 1 for bootstrapping keys)."""
    zero = tgsw_encrypt_zero(key, params, transform, noise_stddev, rng)
    return tgsw_add_gadget(zero, message)


def tgsw_identity(
    tlwe_params: TlweParams, params: TgswParams
) -> TgswSample:
    """The noiseless gadget matrix ``h`` itself (a trivial TGSW sample of 1).

    The BKU bundle construction of Figure 5 starts from ``h`` ("+1" term) and
    adds the scaled bootstrapping keys to it.
    """
    rows = (tlwe_params.mask_count + 1) * params.decomp_length
    data = np.zeros(
        (rows, tlwe_params.mask_count + 1, tlwe_params.degree), dtype=np.int32
    )
    sample = TgswSample(data=data, params=params)
    return tgsw_add_gadget(sample, 1)


def tgsw_transform(
    sample: TgswSample, transform: NegacyclicTransform
) -> TransformedTgswSample:
    """Move every polynomial of a TGSW sample into the Lagrange domain.

    The whole ``(rows, k+1, N)`` stack goes through **one** vectorised
    ``forward`` call (one engine invocation per TGSW sample instead of one
    per polynomial); the stacked result *is* the packed
    ``(rows, k+1, N/2)`` spectral tensor the fused external product
    contracts against.  Per-polynomial values are bit-identical to
    transforming each polynomial on its own (the engines' documented batch
    semantics).
    """
    return TransformedTgswSample(
        tensor=transform.forward(sample.data),
        params=sample.params,
        mask_count=sample.mask_count,
        degree=sample.degree,
        rows=sample.rows,
    )


def _external_product_data(
    tgsw: TransformedTgswSample,
    data: np.ndarray,
    transform: NegacyclicTransform,
    workspace: Optional[BootstrapWorkspace] = None,
    reduce: bool = True,
) -> np.ndarray:
    """Shared fused external-product core on raw TLWE coefficient arrays.

    ``data`` has shape ``(..., k+1, N)`` — a single sample or a batch.  The
    TGSW operand's packed tensor may itself carry batch axes (a batched BKU
    bundle); operand batch axes broadcast inside the contraction.  All
    ``k+1`` blocks decompose into one digit stack and the whole product runs
    through :meth:`repro.tfhe.transform.NegacyclicTransform.contract_accumulate`
    — one stacked forward, one spectral contraction, one stacked backward —
    bit-identical to :func:`_external_product_data_reference`.
    """
    device_path = getattr(transform, "device_external_product", None)
    if device_path is not None:
        # Device engines (the CuPy backend) decompose on the device so the
        # ciphertext crosses the bus once; same digits, same reduce contract.
        result = device_path(tgsw.tensor, data, tgsw.params, reduce=reduce)
    else:
        digits = gadget_decompose_rows(data, tgsw.params, workspace)
        result = transform.contract_accumulate(digits, tgsw.tensor, reduce=reduce)
    _count_logical_transforms(transform, tgsw)
    return result


def _count_logical_transforms(
    transform: NegacyclicTransform, tgsw: TransformedTgswSample
) -> None:
    """Top the engine counters up to the logical per-polynomial counts.

    The fused kernel issues ONE stacked forward/backward call; the Figure-1
    FFT/IFFT breakdown (and the spectrum-cache accounting) must keep seeing
    the per-digit-plane / per-column transform counts of the historical loop.
    """
    cols = tgsw.mask_count + 1
    stats = transform.stats
    stats.forward_calls += tgsw.rows - 1
    stats.backward_calls += cols - 1
    stats.pointwise_ops += 2 * tgsw.rows * cols - 2


def _reference_row_col(
    tgsw: TransformedTgswSample, transform: NegacyclicTransform, row: int, col: int
) -> Spectrum:
    """The historical per-polynomial spectrum view of a packed TGSW tensor."""
    return transform.spectrum_take_col(
        transform.spectrum_index(tgsw.tensor, row), col
    )


def _external_product_rows_reference(
    spectra: List[List[Spectrum]],
    params: TgswParams,
    mask_count: int,
    degree: int,
    data: np.ndarray,
    transform: NegacyclicTransform,
) -> np.ndarray:
    """The pre-fusion external-product loop on a per-row/per-column spectra list.

    One forward per decomposed digit plane, a Python ``rows × (k+1)`` double
    loop of pointwise mul/adds, one backward per output column.  Kept verbatim
    as the bit-identity ground truth for the fused kernel (property tests and
    the external-product benchmark baseline); the BKU reference bundle builder
    feeds it directly.
    """
    k = mask_count
    decomposed: List[np.ndarray] = []
    for block in range(k + 1):
        digits = gadget_decompose(data[..., block, :], params)
        decomposed.extend(digits[j] for j in range(params.decomp_length))

    dec_spectra = [transform.forward(d) for d in decomposed]

    result = np.zeros(data.shape[:-2] + (k + 1, degree), dtype=np.int32)
    for col in range(k + 1):
        acc = transform.spectrum_zero()
        for row in range(len(spectra)):
            acc = transform.spectrum_add(
                acc, transform.spectrum_mul(dec_spectra[row], spectra[row][col])
            )
        result[..., col, :] = torus32_from_int64(transform.backward(acc))
    return result


def _external_product_data_reference(
    tgsw: TransformedTgswSample,
    data: np.ndarray,
    transform: NegacyclicTransform,
) -> np.ndarray:
    """Pre-fusion external product on a packed operand (test/bench baseline)."""
    spectra = [
        [_reference_row_col(tgsw, transform, row, col) for col in range(tgsw.mask_count + 1)]
        for row in range(tgsw.rows)
    ]
    return _external_product_rows_reference(
        spectra, tgsw.params, tgsw.mask_count, tgsw.degree, data, transform
    )


def _check_compatible(tgsw: TransformedTgswSample, tlwe) -> None:
    if tlwe.degree != tgsw.degree or tlwe.mask_count != tgsw.mask_count:
        raise ValueError("TGSW and TLWE operands are incompatible")


def tgsw_external_product(
    tgsw: TransformedTgswSample,
    tlwe: TlweSample,
    transform: NegacyclicTransform,
    workspace: Optional[BootstrapWorkspace] = None,
) -> TlweSample:
    """The external product ``TGSW ⊡ TLWE → TLWE`` (Algorithm 1 line 7).

    The TLWE operand is gadget-decomposed into one ``(k+1)·l`` digit stack,
    transformed with one stacked forward, contracted against the operand's
    packed spectral tensor and brought back with one stacked backward (the
    fused kernel).  Pass a :class:`BootstrapWorkspace` to reuse the
    decomposition scratch across calls.
    """
    _check_compatible(tgsw, tlwe)
    return TlweSample(_external_product_data(tgsw, tlwe.data, transform, workspace))


def tgsw_batch_external_product(
    tgsw: TransformedTgswSample,
    tlwe: TlweBatch,
    transform: NegacyclicTransform,
    workspace: Optional[BootstrapWorkspace] = None,
) -> TlweBatch:
    """Batched external product: one call covers a whole stack of accumulators.

    The decomposition, the stacked forward, the contraction and the stacked
    backward all run once over the batch axis; the result is bit-identical to
    applying :func:`tgsw_external_product` per ciphertext.
    """
    _check_compatible(tgsw, tlwe)
    return TlweBatch(_external_product_data(tgsw, tlwe.data, transform, workspace))


def tgsw_external_product_reference(
    tgsw: TransformedTgswSample,
    tlwe: TlweSample,
    transform: NegacyclicTransform,
) -> TlweSample:
    """The pre-fusion external product (one forward per digit plane, one
    backward per column) — the bit-identity ground truth of the fused kernel."""
    _check_compatible(tgsw, tlwe)
    return TlweSample(_external_product_data_reference(tgsw, tlwe.data, transform))


def tgsw_batch_external_product_reference(
    tgsw: TransformedTgswSample,
    tlwe: TlweBatch,
    transform: NegacyclicTransform,
) -> TlweBatch:
    """Batched :func:`tgsw_external_product_reference` (test/bench baseline)."""
    _check_compatible(tgsw, tlwe)
    return TlweBatch(_external_product_data_reference(tgsw, tlwe.data, transform))


def tgsw_external_product_plain(
    tgsw: TgswSample,
    tlwe: TlweSample,
    transform: NegacyclicTransform,
) -> TlweSample:
    """External product with a coefficient-domain TGSW operand (convenience)."""
    return tgsw_external_product(tgsw_transform(tgsw, transform), tlwe, transform)


def tgsw_cmux(
    selector: TransformedTgswSample,
    if_true: TlweSample,
    if_false: TlweSample,
    transform: NegacyclicTransform,
    workspace: Optional[BootstrapWorkspace] = None,
) -> TlweSample:
    """Homomorphic multiplexer: returns ``if_true`` when the selector encrypts 1.

    ``CMux(C, d1, d0) = C ⊡ (d1 - d0) + d0``.  The classical (non-unrolled)
    blind rotation is a chain of CMux operations — for the specific rotation
    form ``CMux(C, X^p·ACC, ACC)`` use :func:`tgsw_cmux_rotate`, which never
    materialises the rotated branch.
    """
    from repro.tfhe.tlwe import tlwe_add, tlwe_sub

    difference = tlwe_sub(if_true, if_false)
    product = tgsw_external_product(selector, difference, transform, workspace)
    return tlwe_add(product, if_false)


def tgsw_cmux_reference(
    selector: TransformedTgswSample,
    if_true: TlweSample,
    if_false: TlweSample,
    transform: NegacyclicTransform,
) -> TlweSample:
    """CMux through the pre-fusion external product (ground truth)."""
    from repro.tfhe.tlwe import tlwe_add, tlwe_sub

    difference = tlwe_sub(if_true, if_false)
    product = tgsw_external_product_reference(selector, difference, transform)
    return tlwe_add(product, if_false)


def tgsw_cmux_rotate(
    selector: TransformedTgswSample,
    accumulator: TlweSample,
    power: int,
    transform: NegacyclicTransform,
    workspace: Optional[BootstrapWorkspace] = None,
) -> TlweSample:
    """One fused blind-rotation step: ``CMux(BK, X^power·ACC, ACC)``.

    The CMux difference ``X^power·ACC − ACC = (X^power − 1)·ACC`` is formed
    directly by one sign-gather-subtract over precomputed index tables (no
    rotated accumulator is ever materialised), fed through the fused external
    product, and added back onto the accumulator.  Bit-identical to
    ``tgsw_cmux(selector, tlwe_rotate(acc, power), acc, transform)``.
    """
    _check_compatible(selector, accumulator)
    return TlweSample(
        _cmux_rotate_data(selector, accumulator.data, power, transform, workspace)
    )


def _cmux_rotate_data(
    selector: TransformedTgswSample,
    data: np.ndarray,
    power: int,
    transform: NegacyclicTransform,
    workspace: Optional[BootstrapWorkspace],
) -> np.ndarray:
    """Raw-array core of :func:`tgsw_cmux_rotate` (the blind-rotation hot loop).

    The ``(X^power − 1)·ACC`` difference is fused straight into the gadget
    decomposition (:func:`_decompose_rotated_difference`) and the CMux
    add-back folds into the product's single torus reduction (wrapping mod
    2^32 commutes with the int64 addition).
    """
    device_path = getattr(transform, "device_cmux_rotate", None)
    if device_path is not None:
        raw = device_path(selector.tensor, data, power, selector.params)
    else:
        digits = _decompose_rotated_difference(data, power, selector.params, workspace)
        raw = transform.contract_accumulate(digits, selector.tensor, reduce=False)
    _count_logical_transforms(transform, selector)
    raw += data
    raw &= 0xFFFFFFFF
    return raw.astype(np.uint32).view(np.int32)


def tgsw_batch_cmux(
    selector: TransformedTgswSample,
    if_true: TlweBatch,
    if_false: TlweBatch,
    transform: NegacyclicTransform,
    workspace: Optional[BootstrapWorkspace] = None,
) -> TlweBatch:
    """Batched CMux over stacks of TLWE ciphertexts (one selector for all rows)."""
    from repro.tfhe.tlwe import tlwe_batch_add, tlwe_batch_sub

    difference = tlwe_batch_sub(if_true, if_false)
    product = tgsw_batch_external_product(selector, difference, transform, workspace)
    return tlwe_batch_add(product, if_false)


def tgsw_batch_cmux_reference(
    selector: TransformedTgswSample,
    if_true: TlweBatch,
    if_false: TlweBatch,
    transform: NegacyclicTransform,
) -> TlweBatch:
    """Batched CMux through the pre-fusion external product (ground truth)."""
    from repro.tfhe.tlwe import tlwe_batch_add, tlwe_batch_sub

    difference = tlwe_batch_sub(if_true, if_false)
    product = tgsw_batch_external_product_reference(selector, difference, transform)
    return tlwe_batch_add(product, if_false)


def tgsw_batch_cmux_rotate(
    selector: TransformedTgswSample,
    accumulators: TlweBatch,
    powers: np.ndarray,
    transform: NegacyclicTransform,
    workspace: Optional[BootstrapWorkspace] = None,
) -> TlweBatch:
    """One fused batched blind-rotation step with per-ciphertext powers.

    Rows whose power reduces to zero mod ``2N`` contribute an exactly-zero
    difference, so their accumulators come back bit-identical to the scalar
    path's skip.  Bit-identical to ``tgsw_batch_cmux(selector,
    tlwe_batch_rotate(acc, powers), acc, transform)``.
    """
    _check_compatible(selector, accumulators)
    difference = tlwe_batch_mul_by_xk_minus_one(accumulators, powers)
    raw = _external_product_data(
        selector, difference.data, transform, workspace, reduce=False
    )
    raw += accumulators.data
    return TlweBatch(torus32_from_int64(raw))

"""Negacyclic polynomial arithmetic.

TFHE works in the rings ``Z_N[X] = Z[X]/(X^N + 1)`` (integer polynomials) and
``T_N[X] = T[X]/(X^N + 1)`` (torus polynomials).  Both are represented as
NumPy ``int32``/``int64`` coefficient vectors of length ``N`` with coefficient
``i`` holding the coefficient of ``X^i``.

The quotient by ``X^N + 1`` makes multiplication *negacyclic*: ``X^N = -1``,
so rotating a polynomial by ``k`` positions negates the coefficients that wrap
around.  This module provides the exact (schoolbook) negacyclic product used
as ground truth by the FFT engines, together with the rotation and
add/subtract primitives that the bootstrapping loop needs.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.tfhe.torus import torus32_from_int64


@lru_cache(maxsize=None)
def _coefficient_index(degree: int) -> np.ndarray:
    """The cached (read-only) coefficient index table ``[0, 1, ..., N-1]``.

    Negacyclic rotations are gathers over this table: coefficient ``i`` of
    ``X^p · poly`` comes from coefficient ``(i - p) mod N`` with a sign flip
    on wrap-around.  Precomputing the base table once per ring degree keeps
    the per-step rotation work of the blind-rotation loop down to the gather
    itself.
    """
    index = np.arange(degree, dtype=np.int64)
    index.setflags(write=False)
    return index


def _rotation_tables(degree: int, powers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gather/sign index tables for multiplication by ``X^powers``.

    ``powers`` is an int64 array (already reduced mod ``2N``) whose shape
    broadcasts against the rotated stack's batch axes.  Returns ``(src,
    negate)`` with ``src[..., i]`` the source coefficient index of output
    coefficient ``i`` and ``negate[..., i]`` a boolean marking the
    coefficients whose negacyclic sign is ``−1``.
    """
    col = _coefficient_index(degree)
    negate_all = powers >= degree
    shift = powers % degree
    src = (col - shift[..., None]) % degree
    wrapped = col < shift[..., None]
    negate = wrapped ^ negate_all[..., None]
    return src, negate


def zero_torus_polynomial(degree: int) -> np.ndarray:
    """Return the all-zero torus polynomial of the given ring degree."""
    return np.zeros(degree, dtype=np.int32)


def constant_torus_polynomial(degree: int, constant: int) -> np.ndarray:
    """Return the torus polynomial whose constant term is ``constant``."""
    poly = np.zeros(degree, dtype=np.int32)
    poly[0] = np.int32(np.int64(constant) & 0xFFFFFFFF)
    return poly


def poly_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Coefficient-wise torus addition (wrap-around int32)."""
    return torus32_from_int64(a.astype(np.int64) + b.astype(np.int64))


def poly_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Coefficient-wise torus subtraction (wrap-around int32)."""
    return torus32_from_int64(a.astype(np.int64) - b.astype(np.int64))


def poly_neg(a: np.ndarray) -> np.ndarray:
    """Coefficient-wise torus negation."""
    return torus32_from_int64(-a.astype(np.int64))


def poly_scale(scalar: int, a: np.ndarray) -> np.ndarray:
    """Multiply every coefficient by a (signed) integer scalar."""
    return torus32_from_int64(int(scalar) * a.astype(np.int64))


def poly_mul_by_xk(poly: np.ndarray, power: int) -> np.ndarray:
    """Multiply a polynomial by ``X^power`` modulo ``X^N + 1``.

    ``power`` may be any integer; it is reduced modulo ``2N`` because
    ``X^{2N} = 1`` in the quotient ring.  Coefficients that wrap past the
    degree boundary are negated (negacyclic rotation).

    ``poly`` may be a stack of polynomials of shape ``(..., N)`` — every
    polynomial in the stack is rotated by the same ``power``.  The dtype is
    preserved: ``int32`` inputs are treated as torus polynomials (wrap-around
    reduction), ``int64`` inputs as plain integer polynomials (no reduction);
    other dtypes are rejected.
    """
    poly = np.asarray(poly)
    if poly.dtype == np.int32:
        wrap = True
    elif poly.dtype == np.int64:
        wrap = False
    else:
        raise TypeError(f"poly_mul_by_xk expects int32 or int64 input, got {poly.dtype}")
    degree = poly.shape[-1]
    power = int(power) % (2 * degree)
    negate_all = power >= degree
    shift = power % degree

    rotated = np.empty(poly.shape, dtype=np.int64)
    if shift == 0:
        rotated[...] = poly
    else:
        rotated[..., shift:] = poly[..., : degree - shift]
        rotated[..., :shift] = -poly[..., degree - shift :].astype(np.int64)
    if negate_all:
        rotated = -rotated
    return torus32_from_int64(rotated) if wrap else rotated


def poly_mul_by_xk_powers(polys: np.ndarray, powers: np.ndarray) -> np.ndarray:
    """Rotate a stack of torus polynomials, each by its *own* power of ``X``.

    ``polys`` has shape ``(..., N)`` and ``powers`` must broadcast against the
    leading (batch) axes ``polys.shape[:-1]`` — e.g. rotate a batched TLWE
    sample of shape ``(B, k+1, N)`` with per-ciphertext powers of shape
    ``(B, 1)``.  Bit-identical to calling :func:`poly_mul_by_xk` on every
    batch element with its own power, with the same dtype contract: ``int32``
    stacks are torus polynomials (wrap-around), ``int64`` stacks are plain
    integer polynomials, anything else is rejected.
    """
    polys = np.asarray(polys)
    if polys.dtype == np.int32:
        wrap = True
    elif polys.dtype == np.int64:
        wrap = False
    else:
        raise TypeError(
            f"poly_mul_by_xk_powers expects int32 or int64 input, got {polys.dtype}"
        )
    degree = polys.shape[-1]
    powers = np.asarray(powers, dtype=np.int64) % (2 * degree)
    src, negate = _rotation_tables(degree, powers)
    shape = np.broadcast_shapes(polys.shape, src.shape)
    rotated = np.take_along_axis(
        np.broadcast_to(polys, shape), np.broadcast_to(src, shape), axis=-1
    )
    if wrap:
        # Torus stacks rotate entirely in uint32: negation mod 2^32 *is* the
        # negacyclic sign flip followed by the torus reduction.
        unsigned = rotated.view(np.uint32)
        return np.where(negate, -unsigned, unsigned).view(np.int32)
    product = np.where(negate, np.int64(-1), np.int64(1)) * rotated.astype(np.int64)
    return product


def poly_mul_by_xk_minus_one(poly: np.ndarray, power: int) -> np.ndarray:
    """Compute ``(X^power - 1) * poly`` modulo ``X^N + 1``, fused.

    This is the rotate-and-subtract at the heart of every blind-rotation step
    (Algorithm 1 line 6: the CMux difference ``X^{ā_i}·ACC − ACC``) and of the
    BKU bundle construction of Figure 5.  The rotation and the subtraction are
    fused into one sign-gather-subtract over the precomputed index tables —
    no intermediate ``X^power · poly`` polynomial is materialised and the
    torus reduction runs once instead of twice.  The result is bit-identical
    to ``poly_sub(poly_mul_by_xk(poly, power), poly)`` (both reduce the same
    integer mod ``2^32``).

    ``poly`` may be a stack ``(..., N)`` of either ``int32`` (torus) or
    ``int64`` (plain integer) polynomials; the result is always reduced onto
    the 32-bit torus, like :func:`poly_sub`.
    """
    poly = np.asarray(poly)
    if poly.dtype not in (np.int32, np.int64):
        raise TypeError(
            f"poly_mul_by_xk_minus_one expects int32 or int64 input, got {poly.dtype}"
        )
    degree = poly.shape[-1]
    power = int(power) % (2 * degree)
    negate_all = power >= degree
    shift = power % degree
    # A single power means the gather index table degenerates to two
    # contiguous segments (the wrapped head, negated, and the shifted tail),
    # so the gather runs as two block copies straight into the difference
    # buffer — cheaper than the per-row fancy-index tables of
    # :func:`poly_mul_by_xk_minus_one_powers`.  For torus (int32) input the
    # whole difference is computed in uint32 — every operation is taken mod
    # 2^32 anyway, so wrap-around arithmetic *is* the torus reduction and the
    # int64 widening plus the final reduction pass disappear.
    if poly.dtype == np.int32:
        unsigned = poly.view(np.uint32)
        diff = np.empty(poly.shape, dtype=np.uint32)
        if shift:
            np.negative(unsigned[..., degree - shift :], out=diff[..., :shift])
            diff[..., shift:] = unsigned[..., : degree - shift]
        else:
            diff[...] = unsigned
        if negate_all:
            np.negative(diff, out=diff)
        diff -= unsigned
        return diff.view(np.int32)
    diff = np.empty(poly.shape, dtype=np.int64)
    if shift:
        np.negative(poly[..., degree - shift :], out=diff[..., :shift])
        diff[..., shift:] = poly[..., : degree - shift]
    else:
        diff[...] = poly
    if negate_all:
        np.negative(diff, out=diff)
    diff -= poly
    return torus32_from_int64(diff)


def poly_mul_by_xk_minus_one_powers(polys: np.ndarray, powers: np.ndarray) -> np.ndarray:
    """Compute ``(X^powers[i] - 1) * polys[i]`` for a whole stack, fused.

    The batched counterpart of :func:`poly_mul_by_xk_minus_one`: ``powers``
    broadcasts against the leading batch axes of ``polys`` exactly like in
    :func:`poly_mul_by_xk_powers`, and a row whose power reduces to zero mod
    ``2N`` comes out as the zero polynomial (``X^0 − 1 = 0``).  One gather +
    subtract + torus reduction over the whole stack; bit-identical to
    ``poly_sub(poly_mul_by_xk_powers(polys, powers), polys)``.
    """
    polys = np.asarray(polys)
    if polys.dtype not in (np.int32, np.int64):
        raise TypeError(
            "poly_mul_by_xk_minus_one_powers expects int32 or int64 input, "
            f"got {polys.dtype}"
        )
    degree = polys.shape[-1]
    powers = np.asarray(powers, dtype=np.int64) % (2 * degree)
    src, negate = _rotation_tables(degree, powers)
    shape = np.broadcast_shapes(polys.shape, src.shape)
    rotated = np.take_along_axis(
        np.broadcast_to(polys, shape), np.broadcast_to(src, shape), axis=-1
    )
    if polys.dtype == np.int32:
        # Gather, sign-flip and subtract all mod 2^32 — no widening, and the
        # wrap-around arithmetic is itself the torus reduction.
        unsigned = rotated.view(np.uint32)
        diff = np.where(negate, -unsigned, unsigned)
        diff -= polys.view(np.uint32)
        return diff.view(np.int32)
    sign = np.where(negate, np.int64(-1), np.int64(1))
    return torus32_from_int64(sign * rotated.astype(np.int64) - polys)


def negacyclic_convolution(int_poly: np.ndarray, torus_poly: np.ndarray) -> np.ndarray:
    """Exact negacyclic product of an integer polynomial and a torus polynomial.

    Schoolbook ``O(N^2)`` evaluation used as the ground truth the FFT engines
    are validated against, and as the polynomial-multiplication backend for the
    tiny test parameter sets where it is actually faster than an FFT.

    Both operands may carry leading batch axes ``(..., N)`` (broadcast against
    each other); the product is taken along the last axis.  The result is
    reduced onto the 32-bit torus.
    """
    return torus32_from_int64(negacyclic_convolution_int64(int_poly, torus_poly))


def negacyclic_convolution_int64(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact negacyclic product of two integer polynomials, kept in int64.

    Unlike :func:`negacyclic_convolution` the result is *not* reduced onto the
    torus; the FFT error-measurement harness (Figure 8) needs the full-width
    integer reference to express the approximation error in dB.

    Operands may be stacks of polynomials ``(..., N)`` whose batch axes
    broadcast; the batched result is bit-identical to looping over the stack.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    degree = a.shape[-1]
    if b.shape[-1] != degree:
        raise ValueError("polynomial degrees do not match")
    if a.ndim == 1 and b.ndim == 1:
        full = np.convolve(a, b)
    else:
        batch = np.broadcast_shapes(a.shape[:-1], b.shape[:-1])
        full = np.zeros(batch + (2 * degree - 1,), dtype=np.int64)
        for i in range(degree):
            full[..., i : i + degree] += a[..., i : i + 1] * b
    folded = full[..., :degree].copy()
    folded[..., : degree - 1] -= full[..., degree:]
    return folded


def poly_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact coefficient-wise equality of two polynomials."""
    return bool(np.array_equal(np.asarray(a, dtype=np.int32), np.asarray(b, dtype=np.int32)))

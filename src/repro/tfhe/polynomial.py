"""Negacyclic polynomial arithmetic.

TFHE works in the rings ``Z_N[X] = Z[X]/(X^N + 1)`` (integer polynomials) and
``T_N[X] = T[X]/(X^N + 1)`` (torus polynomials).  Both are represented as
NumPy ``int32``/``int64`` coefficient vectors of length ``N`` with coefficient
``i`` holding the coefficient of ``X^i``.

The quotient by ``X^N + 1`` makes multiplication *negacyclic*: ``X^N = -1``,
so rotating a polynomial by ``k`` positions negates the coefficients that wrap
around.  This module provides the exact (schoolbook) negacyclic product used
as ground truth by the FFT engines, together with the rotation and
add/subtract primitives that the bootstrapping loop needs.
"""

from __future__ import annotations

import numpy as np

from repro.tfhe.torus import torus32_from_int64


def zero_torus_polynomial(degree: int) -> np.ndarray:
    """Return the all-zero torus polynomial of the given ring degree."""
    return np.zeros(degree, dtype=np.int32)


def constant_torus_polynomial(degree: int, constant: int) -> np.ndarray:
    """Return the torus polynomial whose constant term is ``constant``."""
    poly = np.zeros(degree, dtype=np.int32)
    poly[0] = np.int32(np.int64(constant) & 0xFFFFFFFF)
    return poly


def poly_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Coefficient-wise torus addition (wrap-around int32)."""
    return torus32_from_int64(a.astype(np.int64) + b.astype(np.int64))


def poly_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Coefficient-wise torus subtraction (wrap-around int32)."""
    return torus32_from_int64(a.astype(np.int64) - b.astype(np.int64))


def poly_neg(a: np.ndarray) -> np.ndarray:
    """Coefficient-wise torus negation."""
    return torus32_from_int64(-a.astype(np.int64))


def poly_scale(scalar: int, a: np.ndarray) -> np.ndarray:
    """Multiply every coefficient by a (signed) integer scalar."""
    return torus32_from_int64(int(scalar) * a.astype(np.int64))


def poly_mul_by_xk(poly: np.ndarray, power: int) -> np.ndarray:
    """Multiply a polynomial by ``X^power`` modulo ``X^N + 1``.

    ``power`` may be any integer; it is reduced modulo ``2N`` because
    ``X^{2N} = 1`` in the quotient ring.  Coefficients that wrap past the
    degree boundary are negated (negacyclic rotation).

    ``poly`` may be a stack of polynomials of shape ``(..., N)`` — every
    polynomial in the stack is rotated by the same ``power``.  The dtype is
    preserved: ``int32`` inputs are treated as torus polynomials (wrap-around
    reduction), ``int64`` inputs as plain integer polynomials (no reduction);
    other dtypes are rejected.
    """
    poly = np.asarray(poly)
    if poly.dtype == np.int32:
        wrap = True
    elif poly.dtype == np.int64:
        wrap = False
    else:
        raise TypeError(f"poly_mul_by_xk expects int32 or int64 input, got {poly.dtype}")
    degree = poly.shape[-1]
    power = int(power) % (2 * degree)
    negate_all = power >= degree
    shift = power % degree

    rotated = np.empty(poly.shape, dtype=np.int64)
    if shift == 0:
        rotated[...] = poly
    else:
        rotated[..., shift:] = poly[..., : degree - shift]
        rotated[..., :shift] = -poly[..., degree - shift :].astype(np.int64)
    if negate_all:
        rotated = -rotated
    return torus32_from_int64(rotated) if wrap else rotated


def poly_mul_by_xk_powers(polys: np.ndarray, powers: np.ndarray) -> np.ndarray:
    """Rotate a stack of torus polynomials, each by its *own* power of ``X``.

    ``polys`` has shape ``(..., N)`` and ``powers`` must broadcast against the
    leading (batch) axes ``polys.shape[:-1]`` — e.g. rotate a batched TLWE
    sample of shape ``(B, k+1, N)`` with per-ciphertext powers of shape
    ``(B, 1)``.  Bit-identical to calling :func:`poly_mul_by_xk` on every
    batch element with its own power, with the same dtype contract: ``int32``
    stacks are torus polynomials (wrap-around), ``int64`` stacks are plain
    integer polynomials, anything else is rejected.
    """
    polys = np.asarray(polys)
    if polys.dtype == np.int32:
        wrap = True
    elif polys.dtype == np.int64:
        wrap = False
    else:
        raise TypeError(
            f"poly_mul_by_xk_powers expects int32 or int64 input, got {polys.dtype}"
        )
    degree = polys.shape[-1]
    powers = np.asarray(powers, dtype=np.int64) % (2 * degree)
    negate_all = powers >= degree
    shift = powers % degree

    col = np.arange(degree, dtype=np.int64)
    src = (col - shift[..., None]) % degree
    wrapped = col < shift[..., None]
    sign = np.where(wrapped ^ negate_all[..., None], np.int64(-1), np.int64(1))
    shape = np.broadcast_shapes(polys.shape, src.shape)
    rotated = np.take_along_axis(
        np.broadcast_to(polys, shape), np.broadcast_to(src, shape), axis=-1
    )
    product = sign * rotated.astype(np.int64)
    return torus32_from_int64(product) if wrap else product


def poly_mul_by_xk_minus_one(poly: np.ndarray, power: int) -> np.ndarray:
    """Compute ``(X^power - 1) * poly`` modulo ``X^N + 1``.

    This is the scaling applied to bootstrapping keys when building the
    blind-rotation accumulator update (Algorithm 1 line 6 and the BKU bundle
    construction of Figure 5).
    """
    return poly_sub(poly_mul_by_xk(poly, power), poly)


def negacyclic_convolution(int_poly: np.ndarray, torus_poly: np.ndarray) -> np.ndarray:
    """Exact negacyclic product of an integer polynomial and a torus polynomial.

    Schoolbook ``O(N^2)`` evaluation used as the ground truth the FFT engines
    are validated against, and as the polynomial-multiplication backend for the
    tiny test parameter sets where it is actually faster than an FFT.

    Both operands may carry leading batch axes ``(..., N)`` (broadcast against
    each other); the product is taken along the last axis.  The result is
    reduced onto the 32-bit torus.
    """
    return torus32_from_int64(negacyclic_convolution_int64(int_poly, torus_poly))


def negacyclic_convolution_int64(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact negacyclic product of two integer polynomials, kept in int64.

    Unlike :func:`negacyclic_convolution` the result is *not* reduced onto the
    torus; the FFT error-measurement harness (Figure 8) needs the full-width
    integer reference to express the approximation error in dB.

    Operands may be stacks of polynomials ``(..., N)`` whose batch axes
    broadcast; the batched result is bit-identical to looping over the stack.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    degree = a.shape[-1]
    if b.shape[-1] != degree:
        raise ValueError("polynomial degrees do not match")
    if a.ndim == 1 and b.ndim == 1:
        full = np.convolve(a, b)
    else:
        batch = np.broadcast_shapes(a.shape[:-1], b.shape[:-1])
        full = np.zeros(batch + (2 * degree - 1,), dtype=np.int64)
        for i in range(degree):
            full[..., i : i + degree] += a[..., i : i + 1] * b
    folded = full[..., :degree].copy()
    folded[..., : degree - 1] -= full[..., degree:]
    return folded


def poly_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact coefficient-wise equality of two polynomials."""
    return bool(np.array_equal(np.asarray(a, dtype=np.int32), np.asarray(b, dtype=np.int32)))

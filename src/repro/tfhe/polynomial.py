"""Negacyclic polynomial arithmetic.

TFHE works in the rings ``Z_N[X] = Z[X]/(X^N + 1)`` (integer polynomials) and
``T_N[X] = T[X]/(X^N + 1)`` (torus polynomials).  Both are represented as
NumPy ``int32``/``int64`` coefficient vectors of length ``N`` with coefficient
``i`` holding the coefficient of ``X^i``.

The quotient by ``X^N + 1`` makes multiplication *negacyclic*: ``X^N = -1``,
so rotating a polynomial by ``k`` positions negates the coefficients that wrap
around.  This module provides the exact (schoolbook) negacyclic product used
as ground truth by the FFT engines, together with the rotation and
add/subtract primitives that the bootstrapping loop needs.
"""

from __future__ import annotations

import numpy as np

from repro.tfhe.torus import torus32_from_int64


def zero_torus_polynomial(degree: int) -> np.ndarray:
    """Return the all-zero torus polynomial of the given ring degree."""
    return np.zeros(degree, dtype=np.int32)


def constant_torus_polynomial(degree: int, constant: int) -> np.ndarray:
    """Return the torus polynomial whose constant term is ``constant``."""
    poly = np.zeros(degree, dtype=np.int32)
    poly[0] = np.int32(np.int64(constant) & 0xFFFFFFFF)
    return poly


def poly_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Coefficient-wise torus addition (wrap-around int32)."""
    return torus32_from_int64(a.astype(np.int64) + b.astype(np.int64))


def poly_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Coefficient-wise torus subtraction (wrap-around int32)."""
    return torus32_from_int64(a.astype(np.int64) - b.astype(np.int64))


def poly_neg(a: np.ndarray) -> np.ndarray:
    """Coefficient-wise torus negation."""
    return torus32_from_int64(-a.astype(np.int64))


def poly_scale(scalar: int, a: np.ndarray) -> np.ndarray:
    """Multiply every coefficient by a (signed) integer scalar."""
    return torus32_from_int64(int(scalar) * a.astype(np.int64))


def poly_mul_by_xk(poly: np.ndarray, power: int) -> np.ndarray:
    """Multiply a polynomial by ``X^power`` modulo ``X^N + 1``.

    ``power`` may be any integer; it is reduced modulo ``2N`` because
    ``X^{2N} = 1`` in the quotient ring.  Coefficients that wrap past the
    degree boundary are negated (negacyclic rotation).
    """
    degree = poly.shape[-1]
    power = int(power) % (2 * degree)
    negate_all = power >= degree
    shift = power % degree

    rotated = np.empty(poly.shape, dtype=np.int32)
    if shift == 0:
        rotated[...] = poly
    else:
        rotated[..., shift:] = poly[..., : degree - shift]
        rotated[..., :shift] = torus32_from_int64(
            -poly[..., degree - shift :].astype(np.int64)
        )
    if negate_all:
        rotated = torus32_from_int64(-rotated.astype(np.int64))
    return rotated.astype(np.int32)


def poly_mul_by_xk_minus_one(poly: np.ndarray, power: int) -> np.ndarray:
    """Compute ``(X^power - 1) * poly`` modulo ``X^N + 1``.

    This is the scaling applied to bootstrapping keys when building the
    blind-rotation accumulator update (Algorithm 1 line 6 and the BKU bundle
    construction of Figure 5).
    """
    return poly_sub(poly_mul_by_xk(poly, power), poly)


def negacyclic_convolution(int_poly: np.ndarray, torus_poly: np.ndarray) -> np.ndarray:
    """Exact negacyclic product of an integer polynomial and a torus polynomial.

    Schoolbook ``O(N^2)`` evaluation used as the ground truth the FFT engines
    are validated against, and as the polynomial-multiplication backend for the
    tiny test parameter sets where it is actually faster than an FFT.

    The result is reduced onto the 32-bit torus.
    """
    int_poly = np.asarray(int_poly, dtype=np.int64)
    torus_poly = np.asarray(torus_poly, dtype=np.int64)
    degree = int_poly.shape[0]
    if torus_poly.shape[0] != degree:
        raise ValueError("polynomial degrees do not match")

    # Full linear convolution, then fold the upper half back in with negation
    # (X^N = -1).
    full = np.convolve(int_poly, torus_poly)
    folded = full[:degree].copy()
    folded[: degree - 1] -= full[degree:]
    return torus32_from_int64(folded)


def negacyclic_convolution_int64(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact negacyclic product of two integer polynomials, kept in int64.

    Unlike :func:`negacyclic_convolution` the result is *not* reduced onto the
    torus; the FFT error-measurement harness (Figure 8) needs the full-width
    integer reference to express the approximation error in dB.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    degree = a.shape[0]
    if b.shape[0] != degree:
        raise ValueError("polynomial degrees do not match")
    full = np.convolve(a, b)
    folded = full[:degree].copy()
    folded[: degree - 1] -= full[degree:]
    return folded


def poly_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact coefficient-wise equality of two polynomials."""
    return bool(np.array_equal(np.asarray(a, dtype=np.int32), np.asarray(b, dtype=np.int32)))

"""Negacyclic polynomial-multiplication engines (the FFT/IFFT substrate).

TFHE stores a polynomial mod ``X^N + 1`` either as a list of ``N``
coefficients or in the *Lagrange half-complex* representation: the complex
evaluations of the polynomial at ``N/2`` odd roots of unity (Section 3 of the
paper).  Converting between the two representations is exactly the FFT/IFFT
work that dominates a bootstrapping, so the multiplication engine is a
pluggable interface:

* :class:`NaiveNegacyclicTransform` — exact schoolbook products (ground truth,
  fast for the tiny test rings);
* :class:`DoubleFFTNegacyclicTransform` — double-precision floating point FFT,
  the approach of the reference TFHE library and of the paper's CPU/GPU/FPGA
  baselines;
* :class:`repro.core.integer_fft.ApproximateNegacyclicTransform` — MATCHA's
  approximate multiplication-less integer FFT (the paper's contribution).

Naming note: following the TFHE library (and the paper's Figure 1), the
*forward* direction (coefficients → Lagrange) is the "IFFT" kernel and the
*backward* direction (Lagrange → coefficients) is the "FFT" kernel.  The
instrumentation counters therefore expose ``forward``/``backward`` counts that
map onto the paper's IFFT/FFT counts.

Batch semantics
---------------

Every engine is *batch-vectorised*: ``forward``/``backward`` and the
``spectrum_*`` algebra accept stacks of polynomials/spectra of shape
``(..., N)`` / ``(..., N/2)`` and transform them along the **last axis** in a
single vectorised call (one ``np.fft`` invocation for the double-precision
engine).  Leading batch axes of two spectrum operands broadcast against each
other, so a batched accumulator can be combined with a single pre-transformed
bootstrapping-key spectrum.  Batched results are bit-identical to looping the
corresponding single-polynomial calls — the batch axis only amortises the
Python/NumPy dispatch overhead, it never changes the arithmetic.  The
invocation counters count *calls*, not batch elements; callers that need
per-ciphertext operation counts multiply by the batch width.  (The fused
external product of :mod:`repro.tfhe.tgsw` additionally tops the counters up
to the *logical* per-polynomial transform counts after each kernel, so the
Figure-1 breakdown keeps seeing the paper's FFT/IFFT numbers.)

The fused external-product core lives here too: ``spectrum_contract``
contracts a stacked digit spectrum against a packed ``(rows, ..., k+1, N/2)``
TGSW tensor and ``contract_accumulate`` wraps one stacked forward, the
contraction and one stacked backward — both ``multiply_accumulate`` and
:func:`repro.tfhe.tgsw.tgsw_external_product` route through it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tfhe.polynomial import negacyclic_convolution_int64
from repro.tfhe.torus import torus32_from_int64

def _probe_pocketfft_gufuncs():  # pragma: no cover - depends on the numpy build
    """The pocketfft gufuncs, or ``None`` when they are absent or misbehave.

    NumPy ≥ 2.0 exposes the pocketfft kernels as gufuncs; calling them
    directly skips ~3 µs of python wrapper per transform, which is most of a
    transform's cost at the reduced test ring sizes.  ``np.fft.fft/ifft``
    call exactly these gufuncs with the same normalisation factors, so the
    results are bit-identical.  The module is *private* NumPy API, so the
    fast path is accepted only after a one-time self-test against the public
    wrappers — any import error, signature change or value mismatch falls
    back to ``np.fft`` instead of crashing the first bootstrap.
    """
    try:
        from numpy.fft import _pocketfft_umath as gufuncs

        probe = np.exp(1j * np.arange(8.0)).reshape(2, 4)
        out = np.empty(probe.shape, dtype=np.complex128)
        gufuncs.fft(probe, 1.0, out=out)
        if not np.array_equal(out, np.fft.fft(probe, axis=-1)):
            return None
        gufuncs.ifft(probe, 1.0 / probe.shape[-1], out=out)
        if not np.array_equal(out, np.fft.ifft(probe, axis=-1)):
            return None
        return gufuncs
    except Exception:
        return None


_pocketfft_gufuncs = _probe_pocketfft_gufuncs()

Spectrum = Any


def _align_contraction_axes(
    expanded: np.ndarray, operand: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Left-pad batch axes so a contraction's operands broadcast.

    Both arrays lead with the shared row axis and trail with aligned
    ``(columns, spectral)`` axes; any batch axes sit in between.  When one
    side carries fewer batch axes (e.g. a batched digit stack against an
    unbatched key tensor), length-1 axes are inserted right after the row
    axis so right-aligned broadcasting pairs batch with batch and columns
    with columns.
    """
    target = max(expanded.ndim, operand.ndim)
    if expanded.ndim < target:
        expanded = expanded.reshape(
            expanded.shape[:1] + (1,) * (target - expanded.ndim) + expanded.shape[1:]
        )
    if operand.ndim < target:
        operand = operand.reshape(
            operand.shape[:1] + (1,) * (target - operand.ndim) + operand.shape[1:]
        )
    return expanded, operand


@dataclass
class TransformStats:
    """Invocation counters used by the latency-breakdown experiment (Fig. 1)."""

    forward_calls: int = 0
    backward_calls: int = 0
    pointwise_ops: int = 0

    def reset(self) -> None:
        """Zero all counters (start of a measurement window)."""
        self.forward_calls = 0
        self.backward_calls = 0
        self.pointwise_ops = 0

    def snapshot(self) -> "TransformStats":
        """An independent copy of the current counter values."""
        return TransformStats(self.forward_calls, self.backward_calls, self.pointwise_ops)


@dataclass(frozen=True)
class TransformSpec:
    """A serializable description of a transform engine: kind + constructor options.

    Cloud keys record the spec of the engine they were generated for, so a
    deserialized key can rebuild an equivalent engine through the registry
    (:func:`make_transform`) without shipping the engine object itself.
    ``kwargs`` is a sorted tuple of ``(name, value)`` pairs so specs are
    hashable and comparable.
    """

    kind: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_options(cls, kind: str, **kwargs: Any) -> "TransformSpec":
        return cls(kind=kind, kwargs=tuple(sorted(kwargs.items())))

    def options(self) -> Dict[str, Any]:
        """The constructor keyword arguments as a plain dict."""
        return dict(self.kwargs)

    def create(self, degree: int) -> "NegacyclicTransform":
        """Instantiate the described engine through the registry."""
        return make_transform(self.kind, degree, **self.options())

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "kwargs": self.options()}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "TransformSpec":
        return cls.from_options(payload["kind"], **payload.get("kwargs", {}))


class NegacyclicTransform(abc.ABC):
    """Common interface of every polynomial-multiplication engine.

    A *spectrum* is an opaque per-engine representation of a polynomial in
    which addition and multiplication are cheap (pointwise for the FFT-based
    engines, plain coefficients for the naive engine).
    """

    #: Registry kind this engine class is constructed under (``None`` for
    #: ad-hoc engines such as test proxies, which cannot be serialized).
    engine_kind: ClassVar[Optional[str]] = None

    def __init__(self, degree: int) -> None:
        if degree <= 0 or degree & (degree - 1):
            raise ValueError("ring degree must be a power of two")
        self.degree = degree
        self.stats = TransformStats()

    # -- registry identity -------------------------------------------------
    def engine_options(self) -> Dict[str, Any]:
        """The constructor options needed to rebuild an equivalent engine."""
        return {}

    def spec(self) -> Optional[TransformSpec]:
        """A :class:`TransformSpec` for this engine, or ``None`` if unregistered."""
        if self.engine_kind is None:
            return None
        return TransformSpec.from_options(self.engine_kind, **self.engine_options())

    # -- conversions ------------------------------------------------------
    @abc.abstractmethod
    def forward(self, coeffs: np.ndarray) -> Spectrum:
        """Coefficients → Lagrange representation (the paper's IFFT kernel)."""

    @abc.abstractmethod
    def backward(self, spectrum: Spectrum) -> np.ndarray:
        """Lagrange representation → int64 coefficients (the paper's FFT kernel)."""

    # -- spectrum algebra --------------------------------------------------
    @abc.abstractmethod
    def spectrum_zero(self) -> Spectrum:
        """The spectrum of the zero polynomial."""

    @abc.abstractmethod
    def spectrum_add(self, a: Spectrum, b: Spectrum) -> Spectrum:
        """Pointwise addition of two spectra."""

    @abc.abstractmethod
    def spectrum_mul(self, a: Spectrum, b: Spectrum) -> Spectrum:
        """Pointwise multiplication of two spectra (ring product)."""

    def spectrum_copy(self, a: Spectrum) -> Spectrum:
        """An independent copy of a spectrum."""
        return np.array(a, copy=True)

    # -- stacked-spectrum helpers ------------------------------------------
    def spectrum_shape(self, spectrum: Spectrum) -> tuple:
        """The array shape of a spectrum (batch axes + the spectral axis)."""
        return np.asarray(spectrum).shape

    def spectrum_expand(self, spectrum: Spectrum, axis: int) -> Spectrum:
        """Insert a length-1 axis into a stacked spectrum at ``axis``.

        ``axis`` is given with respect to the underlying value array (the
        spectral axis is last and cannot be expanded past, so ``axis == -1``
        is invalid).  Engines whose spectra carry per-element side state
        (e.g. fixed-point scales) override this so the side state keeps its
        batch shape aligned.
        """
        return np.expand_dims(np.asarray(spectrum), axis)

    def spectrum_take_col(self, spectrum: Spectrum, col: int) -> Spectrum:
        """Slice output column ``col`` out of a packed ``(..., k+1, N/2)`` tensor.

        The packed TGSW layout keeps the output-column axis second to last;
        this accessor recovers the historical per-column spectrum view.
        """
        return np.asarray(spectrum)[..., col, :]

    def spectrum_index(self, spectrum: Spectrum, index) -> Spectrum:
        """The sub-spectrum at ``index`` of a stacked spectrum.

        ``forward`` over a stack of polynomials returns a stacked spectrum;
        this accessor slices out one element (a view is fine — spectra are
        treated as immutable).  Engines with non-array spectra override it.
        """
        return spectrum[index]

    def spectrum_stack(self, spectra: Sequence[Spectrum]) -> Spectrum:
        """Stack same-shape spectra along a new leading axis.

        Raises ``ValueError`` when the operands cannot be stacked (e.g. the
        shapes differ); callers fall back to the per-term loop in that case.
        """
        return np.stack([np.asarray(s) for s in spectra])

    def spectrum_sum(self, spectrum: Spectrum) -> Spectrum:
        """Reduce a stacked spectrum along its leading axis (one pointwise op)."""
        self.stats.pointwise_ops += 1
        return np.sum(np.asarray(spectrum), axis=0)

    def spectrum_contract(self, stack: Spectrum, operand: Spectrum) -> Spectrum:
        """Contract a digit stack against a packed spectral tensor over rows.

        ``stack`` is a stacked spectrum of shape ``(rows, ..., N/2)`` (the
        forward-transformed gadget digits, optional batch axes in the middle)
        and ``operand`` a packed tensor of shape ``(rows, ..., k+1, N/2)``
        (a :class:`repro.tfhe.tgsw.TransformedTgswSample`, whose optional
        batch axes broadcast against the stack's).  The result is the
        spectral accumulator of the external product::

            result[..., c, :] = sum_r stack[r, ..., :] * operand[r, ..., c, :]

        The row accumulation is **sequential** (a left fold in row order), so
        floating-point engines stay bit-identical to the historical per-row
        ``spectrum_add``/``spectrum_mul`` loop.  Engine implementations count
        the contraction as one stacked product plus one reduction (two
        pointwise ops — call semantics, like every other batched primitive);
        callers that need logical per-polynomial counts top the counters up
        themselves.  This generic fallback (used by ad-hoc engines such as
        test proxies) goes through the ``spectrum_mul``/``spectrum_add``
        algebra and therefore counts ``2·rows`` pointwise ops instead.
        """
        rows = self.spectrum_shape(stack)[0]
        if rows == 0:
            raise ValueError("cannot contract an empty digit stack")
        acc: Optional[Spectrum] = None
        for row in range(rows):
            term = self.spectrum_mul(
                self.spectrum_expand(self.spectrum_index(stack, row), -2),
                self.spectrum_index(operand, row),
            )
            acc = term if acc is None else self.spectrum_add(acc, term)
        return acc

    # -- convenience -------------------------------------------------------
    def multiply(self, int_poly: np.ndarray, torus_poly: np.ndarray) -> np.ndarray:
        """Negacyclic product reduced onto the 32-bit torus."""
        product = self.spectrum_mul(self.forward(int_poly), self.forward(torus_poly))
        return torus32_from_int64(self.backward(product))

    def contract_accumulate(
        self, int_stack: np.ndarray, tensor: Spectrum, reduce: bool = True
    ) -> np.ndarray:
        """The fused external-product core: one forward, one contraction, one backward.

        ``int_stack`` is a stack of small integer polynomials of shape
        ``(rows, ..., N)`` (the gadget digits) and ``tensor`` a packed
        spectral tensor of shape ``(rows, ..., k+1, N/2)``.  The whole stack
        goes through **one** ``forward``, one :meth:`spectrum_contract` and
        **one** ``backward``; the result is the ``(..., k+1, N)`` torus
        coefficient array of every output column at once.  Both
        :meth:`multiply_accumulate` and
        :func:`repro.tfhe.tgsw.tgsw_external_product` route through this
        single implementation.

        With ``reduce=False`` the raw int64 coefficients come back unwrapped,
        so a caller that immediately adds another torus operand (the CMux
        add-back) can fold that addition into its own single reduction —
        wrapping mod ``2^32`` commutes with integer addition, so the result
        is bit-identical either way.
        """
        dec_spectra = self.forward(np.asarray(int_stack))
        acc = self.spectrum_contract(dec_spectra, tensor)
        coeffs = self.backward(acc)
        return torus32_from_int64(coeffs) if reduce else coeffs

    def multiply_accumulate(
        self,
        int_polys: Sequence[np.ndarray],
        spectra: Sequence[Spectrum],
    ) -> np.ndarray:
        """Compute ``sum_j int_polys[j] * spectra[j]`` reduced onto the torus.

        This is the inner loop of the external product: the decomposed
        accumulator rows are transformed, multiplied with the pre-transformed
        TGSW rows and accumulated in the Lagrange domain, and a single
        backward transform produces the result polynomial.
        """
        if len(int_polys) != len(spectra):
            raise ValueError("operand counts do not match")
        if not int_polys:
            return torus32_from_int64(self.backward(self.spectrum_zero()))
        polys = [np.asarray(p) for p in int_polys]
        spectra = list(spectra)
        # The vectorised path needs uniformly-shaped operands whose batch
        # axes already agree pairwise; anything else (e.g. batched polys
        # against scalar spectra, which the per-term loop handles through
        # broadcasting) takes the reference loop.
        poly_batch = polys[0].shape[:-1]
        spec_batch = self.spectrum_shape(spectra[0])[:-1]
        uniform = (
            all(p.shape == polys[0].shape for p in polys)
            and all(self.spectrum_shape(s)[:-1] == spec_batch for s in spectra)
            and poly_batch == spec_batch
        )
        if not uniform:
            acc = self.spectrum_zero()
            for poly, spec in zip(polys, spectra):
                acc = self.spectrum_add(acc, self.spectrum_mul(self.forward(poly), spec))
            return torus32_from_int64(self.backward(acc))
        # Vectorised path: route through the shared fused core — the stacked
        # spectra become a packed tensor with a single output column, so one
        # forward, one contraction and one backward cover every term.
        # Counters count calls (not stacked elements), consistent with the
        # batch semantics documented above.
        tensor = self.spectrum_expand(self.spectrum_stack(spectra), -2)
        result = self.contract_accumulate(np.stack(polys), tensor)
        return result[..., 0, :]

    def reset_stats(self) -> None:
        """Reset the engine's invocation counters."""
        self.stats.reset()


class NaiveNegacyclicTransform(NegacyclicTransform):
    """Exact engine: the "spectrum" is the coefficient vector itself.

    Spectrum multiplication is the exact negacyclic convolution, so this
    engine introduces no error at all.  It is quadratic in ``N`` and is only
    practical for the reduced test rings, where it serves as the ground truth
    for both FFT engines.
    """

    engine_kind = "naive"

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        self.stats.forward_calls += 1
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        return coeffs.copy()

    def backward(self, spectrum: np.ndarray) -> np.ndarray:
        self.stats.backward_calls += 1
        return np.asarray(spectrum, dtype=np.int64).copy()

    def spectrum_zero(self) -> np.ndarray:
        return np.zeros(self.degree, dtype=np.int64)

    def spectrum_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return a + b

    def spectrum_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return negacyclic_convolution_int64(a, b)

    def spectrum_contract(self, stack: np.ndarray, operand: np.ndarray) -> np.ndarray:
        """Fused contraction: one stacked product + one reduction (two ops).

        Exact integer arithmetic, so the accumulation order is immaterial:
        one broadcast negacyclic product over all rows, then one reduction
        along the row axis.
        """
        self.stats.pointwise_ops += 2
        stack = np.asarray(stack, dtype=np.int64)
        operand = np.asarray(operand, dtype=np.int64)
        if stack.shape[0] == 0:
            raise ValueError("cannot contract an empty digit stack")
        expanded, operand = _align_contraction_axes(stack[..., None, :], operand)
        products = negacyclic_convolution_int64(expanded, operand)
        return np.add.reduce(products, axis=0)


class DoubleFFTNegacyclicTransform(NegacyclicTransform):
    """Double-precision floating-point FFT engine (the TFHE-library baseline).

    A real polynomial of degree ``N`` is folded into ``N/2`` complex samples
    ``q_s = p_s + i p_{s + N/2}``, twisted by ``exp(i pi s / N)`` and run
    through an ``N/2``-point complex transform; the result holds the
    evaluations of the polynomial at the odd roots of unity
    ``exp(i pi (4u + 1) / N)``.  Pointwise products of these evaluations
    correspond exactly to negacyclic polynomial products.
    """

    engine_kind = "double"

    def __init__(self, degree: int) -> None:
        super().__init__(degree)
        half = degree // 2
        self._half = half
        s = np.arange(half)
        self._twist = np.exp(1j * np.pi * s / degree)
        self._untwist = np.exp(-1j * np.pi * s / degree)
        # half is a power of two, so folding the transform normalisation into
        # the twist tables is an exact exponent shift: every intermediate of
        # the FFT scales by exactly 2^±log2(half) and the results stay
        # bit-identical to twisting and normalising in separate passes.
        self._twist_scaled = self._twist * half
        self._untwist_normalised = self._untwist / half
        self._inverse_norm = 1.0 / half

    def _fft(self, values: np.ndarray) -> np.ndarray:
        """Unnormalised complex FFT along the last axis (bit-identical to np.fft.fft)."""
        if _pocketfft_gufuncs is not None:
            out = np.empty(values.shape, dtype=np.complex128)
            _pocketfft_gufuncs.fft(values, 1.0, out=out)
            return out
        return np.fft.fft(values, axis=-1)

    def _ifft(self, values: np.ndarray) -> np.ndarray:
        """1/n-normalised inverse FFT along the last axis (bit-identical to np.fft.ifft)."""
        if _pocketfft_gufuncs is not None:
            out = np.empty(values.shape, dtype=np.complex128)
            _pocketfft_gufuncs.ifft(values, self._inverse_norm, out=out)
            return out
        return np.fft.ifft(values, axis=-1)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        self.stats.forward_calls += 1
        coeffs = np.asarray(coeffs)
        if coeffs.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        half = self._half
        # Build the folded complex array by direct component assignment (the
        # casts to float64 and the twist product are bit-identical to the
        # historical `(re + 1j·im) * twist` expression, minus two temporaries).
        folded = np.empty(coeffs.shape[:-1] + (half,), dtype=np.complex128)
        folded.real = coeffs[..., :half]
        folded.imag = coeffs[..., half:]
        folded *= self._twist_scaled
        # Unnormalised inverse-sign DFT: S_u = sum_s folded_s e^{+2 pi i u s / half}
        return self._ifft(folded)

    def backward(self, spectrum: np.ndarray) -> np.ndarray:
        self.stats.backward_calls += 1
        half = self._half
        spectrum = np.asarray(spectrum, dtype=np.complex128)
        folded = self._fft(spectrum)
        folded *= self._untwist_normalised
        # Round-half-even while still complex (componentwise, identical to
        # rounding after the split), then unfold with casting assignments —
        # the integral float64 → int64 casts are exact.
        np.rint(folded, out=folded)
        coeffs = np.empty(spectrum.shape[:-1] + (self.degree,), dtype=np.int64)
        coeffs[..., :half] = folded.real
        coeffs[..., half:] = folded.imag
        return coeffs

    def spectrum_zero(self) -> np.ndarray:
        return np.zeros(self._half, dtype=np.complex128)

    def spectrum_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return a + b

    def spectrum_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return a * b

    def spectrum_contract(self, stack: np.ndarray, operand: np.ndarray) -> np.ndarray:
        """Fused contraction: one stacked product + one reduction (two ops).

        ``np.add.reduce`` over the leading (row) axis accumulates the row
        slices **sequentially in row order** (NumPy's pairwise summation only
        applies to reductions along the innermost axis), so every output
        element sees the exact floating-point addition order of the
        historical per-row ``acc = add(acc, mul(...))`` fold — adding to the
        initial zero is exact, so starting from the first product is
        bit-identical.  The property suite pins this down against the
        per-row reference loop for every engine.
        """
        self.stats.pointwise_ops += 2
        stack = np.asarray(stack)
        operand = np.asarray(operand)
        if stack.shape[0] == 0:
            raise ValueError("cannot contract an empty digit stack")
        expanded, operand = _align_contraction_axes(stack[..., None, :], operand)
        products = expanded * operand
        return np.add.reduce(products, axis=0)


# --------------------------------------------------------------------------- #
# engine registry                                                             #
# --------------------------------------------------------------------------- #


class EngineFault(RuntimeError):
    """A transform engine failed *at runtime* (after construction).

    Raised when an engine that constructed fine later misbehaves — a JIT
    kernel failing its self-check, a device error mid-transform, a poisoned
    buffer.  The fault is typed (rather than a bare ``RuntimeError``) so the
    runtime can react structurally: :meth:`repro.runtime.context.FheContext.failover`
    quarantines the faulting kind in the registry and transparently rebuilds
    the evaluation state on the best fallback engine within the same
    error-model family, and the batch scheduler retries the affected rows
    there.  Retryable by construction: no partial results escape.
    """

    retryable = True


#: Engine kinds quarantined after a runtime fault → the reason string.
#: Quarantine is process-wide registry state (matching the registry itself):
#: a quarantined kind reports as unavailable, so ``select_best_engine`` skips
#: it and ``make_transform`` refuses it until :func:`clear_engine_quarantine`.
_QUARANTINED: Dict[str, str] = {}


def quarantine_engine(kind: str, reason: str = "engine fault") -> None:
    """Mark a registered engine kind unavailable after a runtime fault."""
    engine_entry(kind)  # validate the kind before poisoning the map
    _QUARANTINED[kind] = str(reason) or "engine fault"


def clear_engine_quarantine(kind: Optional[str] = None) -> None:
    """Lift the quarantine of ``kind`` (or of every kind when ``None``)."""
    if kind is None:
        _QUARANTINED.clear()
    else:
        _QUARANTINED.pop(kind, None)


def quarantined_engines() -> Dict[str, str]:
    """Currently quarantined engine kinds → reason (sorted by kind)."""
    return {kind: _QUARANTINED[kind] for kind in sorted(_QUARANTINED)}


@dataclass(frozen=True)
class EngineEntry:
    """One registered polynomial-multiplication engine.

    Beyond the factory, an entry carries the engine's *capabilities*:

    ``error_model``
        The numerical contract the engine's results satisfy —

        * ``"exact"``: exact integer arithmetic (no error at all);
        * ``"fft64"``: double-precision FFT, **bit-identical** to the
          ``"double"`` reference engine (the compiled CPU fast path makes
          this promise and the cross-engine suite enforces it);
        * ``"fft64-device"``: double-precision FFT on a device whose FFT
          kernels round differently in the last bit (cuFFT); decrypted gate
          results match ``"double"``, raw ciphertext bits may not;
        * ``"approx"``: MATCHA's approximate integer FFT error model
          (validated against the Figure-8 error budget, not bit-identity).
    ``priority``
        Auto-selection rank — :func:`select_best_engine` picks the highest
        *available* priority within a compatible error-model family.
    ``availability``
        Optional zero-argument probe returning ``None`` when the engine can
        be constructed here, or a human-readable reason string (e.g.
        ``"cupy: not installed"``) when it cannot.  Entries without a probe
        are always available.
    ``device``
        ``"cpu"`` or ``"gpu"`` — used by the capability matrix and the
        modeled-vs-measured platform comparison.
    """

    kind: str
    factory: Callable[..., NegacyclicTransform]
    valid_kwargs: frozenset
    description: str = ""
    error_model: str = "exact"
    priority: int = 0
    availability: Optional[Callable[[], Optional[str]]] = None
    device: str = "cpu"

    def unavailable_reason(self) -> Optional[str]:
        """``None`` when constructible here, else why not (human-readable).

        A runtime quarantine (:func:`quarantine_engine`) takes precedence
        over the static availability probe: an engine that *constructs* fine
        but faulted mid-evaluation must stop being selectable until the
        quarantine is lifted.
        """
        quarantined = _QUARANTINED.get(self.kind)
        if quarantined is not None:
            return f"quarantined: {quarantined}"
        if self.availability is None:
            return None
        return self.availability()


_ENGINE_REGISTRY: Dict[str, EngineEntry] = {}


def register_engine(
    kind: str,
    factory: Callable[..., NegacyclicTransform],
    valid_kwargs: Sequence[str] = (),
    description: str = "",
    error_model: str = "exact",
    priority: int = 0,
    availability: Optional[Callable[[], Optional[str]]] = None,
    device: str = "cpu",
) -> None:
    """Register a transform engine under ``kind``.

    ``factory(degree, **kwargs)`` must return a :class:`NegacyclicTransform`;
    ``valid_kwargs`` lists every keyword argument the factory accepts, so
    :func:`make_transform` can reject typos instead of silently forwarding
    bogus options.  ``availability`` lets optional-dependency backends (the
    Numba-compiled and CuPy engines) register unconditionally while still
    reporting *why* they cannot run here — see :class:`EngineEntry` for the
    capability fields.  Re-registering a kind replaces the previous entry.
    """
    if not kind:
        raise ValueError("engine kind must be a non-empty string")
    _ENGINE_REGISTRY[kind] = EngineEntry(
        kind=kind,
        factory=factory,
        valid_kwargs=frozenset(valid_kwargs),
        description=description,
        error_model=error_model,
        priority=priority,
        availability=availability,
        device=device,
    )


def available_engines() -> Dict[str, Optional[str]]:
    """Every registered engine kind → ``None`` (usable) or why it is not.

    Registered-but-unavailable backends (e.g. the CuPy engine on a machine
    without CuPy) are **reported with their reason** instead of silently
    omitted — ``{"compiled": None, "cupy": "cupy: not installed", ...}``.
    The mapping iterates in sorted kind order, so legacy callers that treat
    the result as a sequence of kinds (membership tests, ``", ".join``)
    keep working unchanged.
    """
    return {kind: _ENGINE_REGISTRY[kind].unavailable_reason()
            for kind in sorted(_ENGINE_REGISTRY)}


def usable_engines() -> List[str]:
    """The registered engine kinds that are constructible here, sorted."""
    return [kind for kind, reason in available_engines().items() if reason is None]


def describe_engines() -> List[str]:
    """Human-readable one-line status per registered engine (CLI listings)."""
    lines = []
    for kind, reason in available_engines().items():
        entry = _ENGINE_REGISTRY[kind]
        status = "available" if reason is None else f"UNAVAILABLE ({reason})"
        lines.append(
            f"{kind:>10}  [{entry.device}, {entry.error_model:>12}]  {status}"
            + (f" — {entry.description}" if entry.description else "")
        )
    return lines


def engine_entry(kind: str) -> EngineEntry:
    """Look up a registry entry; unknown kinds list the valid alternatives."""
    try:
        return _ENGINE_REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown transform kind: {kind!r} (valid kinds: "
            f"{', '.join(available_engines())})"
        ) from None


def select_best_engine(
    error_model: Optional[str] = None,
    for_spec: Optional["TransformSpec"] = None,
    allow_device: bool = True,
) -> str:
    """The best *available* engine kind, by capability and priority.

    Selection order: among the registered engines whose availability probe
    passes — and, when ``error_model`` or ``for_spec`` constrains the
    numerical contract, whose error model is compatible — the entry with the
    highest ``priority`` wins (ties break toward the lexicographically first
    kind, deterministically).

    Compatibility is one-directional: a key generated under ``"double"``
    (``fft64``) may be evaluated by any ``fft64`` engine bit-identically, or
    by an ``fft64-device`` engine up to last-bit FFT rounding (decrypted
    results match) — pass ``allow_device=False`` to demand strict
    bit-identity.  ``"exact"`` and ``"approx"`` families only ever select
    within themselves.

    This is what ``FheContext(key, engine="auto")``, ``tools/serve.py
    --engine auto`` and the engine benchmarks route through.
    """
    if for_spec is not None:
        if error_model is not None:
            raise ValueError("pass either error_model or for_spec, not both")
        error_model = engine_entry(for_spec.kind).error_model
    compatible = {error_model}
    if error_model in ("fft64", None) and allow_device:
        compatible.add("fft64-device")
    if error_model in ("fft64-device", None):
        # CPU fft64 engines evaluate device-generated keys (same arithmetic
        # model, strictly deterministic rounding) — the fallback `--engine
        # auto` takes on a machine without a GPU.
        compatible.add("fft64")
    candidates = [
        entry
        for entry in _ENGINE_REGISTRY.values()
        if entry.error_model in compatible and entry.unavailable_reason() is None
    ]
    if not candidates:
        detail = ", ".join(
            f"{kind}: {reason or 'ok'}" for kind, reason in available_engines().items()
        )
        raise ValueError(
            f"no available engine for error model {error_model!r} "
            f"(registered engines: {detail})"
        )
    best = max(candidates, key=lambda entry: (entry.priority, entry.kind))
    return best.kind


def make_transform(kind: str, degree: int, **kwargs) -> NegacyclicTransform:
    """Instantiate a registered engine (``"naive"``, ``"double"``, ``"approx"``,
    ``"compiled"``, ``"cupy"``, ...).

    Keyword arguments are validated against the engine's registered option
    set before the factory runs, so a typo like ``twiddel_bits`` fails with
    the offending engine named and its accepted options listed (plus which
    *other* engine accepts the kwarg, when one does) instead of being
    silently dropped or crashing deep inside the engine constructor.
    Unavailable engines fail here with their availability reason.
    """
    entry = engine_entry(kind)
    unknown = sorted(set(kwargs) - entry.valid_kwargs)
    if unknown:
        valid = ", ".join(sorted(entry.valid_kwargs)) or "(none)"
        hints = []
        for name in unknown:
            owners = sorted(
                other.kind
                for other in _ENGINE_REGISTRY.values()
                if other.kind != kind and name in other.valid_kwargs
            )
            if owners:
                hints.append(f"{name!r} is accepted by {', '.join(owners)}")
        raise ValueError(
            f"unknown option(s) {unknown} for transform engine {kind!r}; "
            f"engine {kind!r} accepts: {valid}"
            + (f" ({'; '.join(hints)})" if hints else "")
        )
    reason = entry.unavailable_reason()
    if reason is not None:
        usable = ", ".join(usable_engines()) or "(none)"
        raise ValueError(
            f"transform engine {kind!r} is registered but unavailable here: "
            f"{reason}; usable engines: {usable}"
        )
    return entry.factory(degree, **kwargs)


def _approx_factory(degree: int, **kwargs) -> NegacyclicTransform:
    # Imported lazily: repro.core builds on repro.tfhe, not the reverse.
    from repro.core.integer_fft import ApproximateNegacyclicTransform

    return ApproximateNegacyclicTransform(degree, **kwargs)


def _compiled_factory(degree: int, **kwargs) -> NegacyclicTransform:
    # Lazy import keeps the (optional) Numba probe off the module import path.
    from repro.tfhe.engine_compiled import CompiledNegacyclicTransform

    return CompiledNegacyclicTransform(degree, **kwargs)


def _cupy_factory(degree: int, **kwargs) -> NegacyclicTransform:
    from repro.tfhe.engine_cupy import CupyNegacyclicTransform

    return CupyNegacyclicTransform(degree, **kwargs)


def _cupy_availability() -> Optional[str]:
    from repro.tfhe.engine_cupy import cupy_unavailable_reason

    return cupy_unavailable_reason()


register_engine(
    "naive",
    NaiveNegacyclicTransform,
    description="exact schoolbook negacyclic products (ground truth)",
    error_model="exact",
)
register_engine(
    "double",
    DoubleFFTNegacyclicTransform,
    description="double-precision floating-point FFT (TFHE-library baseline)",
    error_model="fft64",
    priority=0,
)
register_engine(
    "approx",
    _approx_factory,
    valid_kwargs=("twiddle_bits", "target_msb"),
    description="MATCHA's approximate multiplication-less integer FFT",
    error_model="approx",
)
register_engine(
    "compiled",
    _compiled_factory,
    valid_kwargs=("block_size", "parallel", "require_numba"),
    description=(
        "compiled CPU fast path: Numba-jitted twist/fold/contract kernels "
        "when Numba imports, cache-blocked NumPy otherwise (always registers)"
    ),
    error_model="fft64",
    priority=10,
)
register_engine(
    "cupy",
    _cupy_factory,
    valid_kwargs=("block_rows", "pinned_staging"),
    description="GPU engine on CuPy arrays (cuFFT + device-side gadget decomposition)",
    error_model="fft64-device",
    priority=20,
    availability=_cupy_availability,
    device="gpu",
)

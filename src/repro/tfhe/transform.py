"""Negacyclic polynomial-multiplication engines (the FFT/IFFT substrate).

TFHE stores a polynomial mod ``X^N + 1`` either as a list of ``N``
coefficients or in the *Lagrange half-complex* representation: the complex
evaluations of the polynomial at ``N/2`` odd roots of unity (Section 3 of the
paper).  Converting between the two representations is exactly the FFT/IFFT
work that dominates a bootstrapping, so the multiplication engine is a
pluggable interface:

* :class:`NaiveNegacyclicTransform` — exact schoolbook products (ground truth,
  fast for the tiny test rings);
* :class:`DoubleFFTNegacyclicTransform` — double-precision floating point FFT,
  the approach of the reference TFHE library and of the paper's CPU/GPU/FPGA
  baselines;
* :class:`repro.core.integer_fft.ApproximateNegacyclicTransform` — MATCHA's
  approximate multiplication-less integer FFT (the paper's contribution).

Naming note: following the TFHE library (and the paper's Figure 1), the
*forward* direction (coefficients → Lagrange) is the "IFFT" kernel and the
*backward* direction (Lagrange → coefficients) is the "FFT" kernel.  The
instrumentation counters therefore expose ``forward``/``backward`` counts that
map onto the paper's IFFT/FFT counts.

Batch semantics
---------------

Every engine is *batch-vectorised*: ``forward``/``backward`` and the
``spectrum_*`` algebra accept stacks of polynomials/spectra of shape
``(..., N)`` / ``(..., N/2)`` and transform them along the **last axis** in a
single vectorised call (one ``np.fft`` invocation for the double-precision
engine).  Leading batch axes of two spectrum operands broadcast against each
other, so a batched accumulator can be combined with a single pre-transformed
bootstrapping-key spectrum.  Batched results are bit-identical to looping the
corresponding single-polynomial calls — the batch axis only amortises the
Python/NumPy dispatch overhead, it never changes the arithmetic.  The
invocation counters count *calls*, not batch elements; callers that need
per-ciphertext operation counts multiply by the batch width.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.tfhe.polynomial import negacyclic_convolution_int64
from repro.tfhe.torus import torus32_from_int64

Spectrum = Any


@dataclass
class TransformStats:
    """Invocation counters used by the latency-breakdown experiment (Fig. 1)."""

    forward_calls: int = 0
    backward_calls: int = 0
    pointwise_ops: int = 0

    def reset(self) -> None:
        """Zero all counters (start of a measurement window)."""
        self.forward_calls = 0
        self.backward_calls = 0
        self.pointwise_ops = 0

    def snapshot(self) -> "TransformStats":
        """An independent copy of the current counter values."""
        return TransformStats(self.forward_calls, self.backward_calls, self.pointwise_ops)


class NegacyclicTransform(abc.ABC):
    """Common interface of every polynomial-multiplication engine.

    A *spectrum* is an opaque per-engine representation of a polynomial in
    which addition and multiplication are cheap (pointwise for the FFT-based
    engines, plain coefficients for the naive engine).
    """

    def __init__(self, degree: int) -> None:
        if degree <= 0 or degree & (degree - 1):
            raise ValueError("ring degree must be a power of two")
        self.degree = degree
        self.stats = TransformStats()

    # -- conversions ------------------------------------------------------
    @abc.abstractmethod
    def forward(self, coeffs: np.ndarray) -> Spectrum:
        """Coefficients → Lagrange representation (the paper's IFFT kernel)."""

    @abc.abstractmethod
    def backward(self, spectrum: Spectrum) -> np.ndarray:
        """Lagrange representation → int64 coefficients (the paper's FFT kernel)."""

    # -- spectrum algebra --------------------------------------------------
    @abc.abstractmethod
    def spectrum_zero(self) -> Spectrum:
        """The spectrum of the zero polynomial."""

    @abc.abstractmethod
    def spectrum_add(self, a: Spectrum, b: Spectrum) -> Spectrum:
        """Pointwise addition of two spectra."""

    @abc.abstractmethod
    def spectrum_mul(self, a: Spectrum, b: Spectrum) -> Spectrum:
        """Pointwise multiplication of two spectra (ring product)."""

    def spectrum_copy(self, a: Spectrum) -> Spectrum:
        """An independent copy of a spectrum."""
        return np.array(a, copy=True)

    # -- convenience -------------------------------------------------------
    def multiply(self, int_poly: np.ndarray, torus_poly: np.ndarray) -> np.ndarray:
        """Negacyclic product reduced onto the 32-bit torus."""
        product = self.spectrum_mul(self.forward(int_poly), self.forward(torus_poly))
        return torus32_from_int64(self.backward(product))

    def multiply_accumulate(
        self,
        int_polys: Sequence[np.ndarray],
        spectra: Sequence[Spectrum],
    ) -> np.ndarray:
        """Compute ``sum_j int_polys[j] * spectra[j]`` reduced onto the torus.

        This is the inner loop of the external product: the decomposed
        accumulator rows are transformed, multiplied with the pre-transformed
        TGSW rows and accumulated in the Lagrange domain, and a single
        backward transform produces the result polynomial.
        """
        if len(int_polys) != len(spectra):
            raise ValueError("operand counts do not match")
        acc = self.spectrum_zero()
        for poly, spec in zip(int_polys, spectra):
            acc = self.spectrum_add(acc, self.spectrum_mul(self.forward(poly), spec))
        return torus32_from_int64(self.backward(acc))

    def reset_stats(self) -> None:
        """Reset the engine's invocation counters."""
        self.stats.reset()


class NaiveNegacyclicTransform(NegacyclicTransform):
    """Exact engine: the "spectrum" is the coefficient vector itself.

    Spectrum multiplication is the exact negacyclic convolution, so this
    engine introduces no error at all.  It is quadratic in ``N`` and is only
    practical for the reduced test rings, where it serves as the ground truth
    for both FFT engines.
    """

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        self.stats.forward_calls += 1
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        return coeffs.copy()

    def backward(self, spectrum: np.ndarray) -> np.ndarray:
        self.stats.backward_calls += 1
        return np.asarray(spectrum, dtype=np.int64).copy()

    def spectrum_zero(self) -> np.ndarray:
        return np.zeros(self.degree, dtype=np.int64)

    def spectrum_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return a + b

    def spectrum_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return negacyclic_convolution_int64(a, b)


class DoubleFFTNegacyclicTransform(NegacyclicTransform):
    """Double-precision floating-point FFT engine (the TFHE-library baseline).

    A real polynomial of degree ``N`` is folded into ``N/2`` complex samples
    ``q_s = p_s + i p_{s + N/2}``, twisted by ``exp(i pi s / N)`` and run
    through an ``N/2``-point complex transform; the result holds the
    evaluations of the polynomial at the odd roots of unity
    ``exp(i pi (4u + 1) / N)``.  Pointwise products of these evaluations
    correspond exactly to negacyclic polynomial products.
    """

    def __init__(self, degree: int) -> None:
        super().__init__(degree)
        half = degree // 2
        self._half = half
        s = np.arange(half)
        self._twist = np.exp(1j * np.pi * s / degree)
        self._untwist = np.exp(-1j * np.pi * s / degree)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        self.stats.forward_calls += 1
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        half = self._half
        folded = (coeffs[..., :half] + 1j * coeffs[..., half:]) * self._twist
        # Unnormalised inverse-sign DFT: S_u = sum_s folded_s e^{+2 pi i u s / half}
        return np.fft.ifft(folded, axis=-1) * half

    def backward(self, spectrum: np.ndarray) -> np.ndarray:
        self.stats.backward_calls += 1
        half = self._half
        spectrum = np.asarray(spectrum, dtype=np.complex128)
        folded = np.fft.fft(spectrum, axis=-1) / half
        folded = folded * self._untwist
        coeffs = np.empty(spectrum.shape[:-1] + (self.degree,), dtype=np.float64)
        coeffs[..., :half] = folded.real
        coeffs[..., half:] = folded.imag
        return np.round(coeffs).astype(np.int64)

    def spectrum_zero(self) -> np.ndarray:
        return np.zeros(self._half, dtype=np.complex128)

    def spectrum_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return a + b

    def spectrum_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return a * b


def make_transform(kind: str, degree: int, **kwargs) -> NegacyclicTransform:
    """Factory for the engines defined in this module and in ``repro.core``.

    ``kind`` is one of ``"naive"``, ``"double"`` or ``"approx"``; extra keyword
    arguments (e.g. ``twiddle_bits``) are forwarded to the approximate engine.
    """
    if kind == "naive":
        return NaiveNegacyclicTransform(degree)
    if kind == "double":
        return DoubleFFTNegacyclicTransform(degree)
    if kind == "approx":
        from repro.core.integer_fft import ApproximateNegacyclicTransform

        return ApproximateNegacyclicTransform(degree, **kwargs)
    raise ValueError(f"unknown transform kind: {kind!r}")

"""Negacyclic polynomial-multiplication engines (the FFT/IFFT substrate).

TFHE stores a polynomial mod ``X^N + 1`` either as a list of ``N``
coefficients or in the *Lagrange half-complex* representation: the complex
evaluations of the polynomial at ``N/2`` odd roots of unity (Section 3 of the
paper).  Converting between the two representations is exactly the FFT/IFFT
work that dominates a bootstrapping, so the multiplication engine is a
pluggable interface:

* :class:`NaiveNegacyclicTransform` — exact schoolbook products (ground truth,
  fast for the tiny test rings);
* :class:`DoubleFFTNegacyclicTransform` — double-precision floating point FFT,
  the approach of the reference TFHE library and of the paper's CPU/GPU/FPGA
  baselines;
* :class:`repro.core.integer_fft.ApproximateNegacyclicTransform` — MATCHA's
  approximate multiplication-less integer FFT (the paper's contribution).

Naming note: following the TFHE library (and the paper's Figure 1), the
*forward* direction (coefficients → Lagrange) is the "IFFT" kernel and the
*backward* direction (Lagrange → coefficients) is the "FFT" kernel.  The
instrumentation counters therefore expose ``forward``/``backward`` counts that
map onto the paper's IFFT/FFT counts.

Batch semantics
---------------

Every engine is *batch-vectorised*: ``forward``/``backward`` and the
``spectrum_*`` algebra accept stacks of polynomials/spectra of shape
``(..., N)`` / ``(..., N/2)`` and transform them along the **last axis** in a
single vectorised call (one ``np.fft`` invocation for the double-precision
engine).  Leading batch axes of two spectrum operands broadcast against each
other, so a batched accumulator can be combined with a single pre-transformed
bootstrapping-key spectrum.  Batched results are bit-identical to looping the
corresponding single-polynomial calls — the batch axis only amortises the
Python/NumPy dispatch overhead, it never changes the arithmetic.  The
invocation counters count *calls*, not batch elements; callers that need
per-ciphertext operation counts multiply by the batch width.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tfhe.polynomial import negacyclic_convolution_int64
from repro.tfhe.torus import torus32_from_int64

Spectrum = Any


@dataclass
class TransformStats:
    """Invocation counters used by the latency-breakdown experiment (Fig. 1)."""

    forward_calls: int = 0
    backward_calls: int = 0
    pointwise_ops: int = 0

    def reset(self) -> None:
        """Zero all counters (start of a measurement window)."""
        self.forward_calls = 0
        self.backward_calls = 0
        self.pointwise_ops = 0

    def snapshot(self) -> "TransformStats":
        """An independent copy of the current counter values."""
        return TransformStats(self.forward_calls, self.backward_calls, self.pointwise_ops)


@dataclass(frozen=True)
class TransformSpec:
    """A serializable description of a transform engine: kind + constructor options.

    Cloud keys record the spec of the engine they were generated for, so a
    deserialized key can rebuild an equivalent engine through the registry
    (:func:`make_transform`) without shipping the engine object itself.
    ``kwargs`` is a sorted tuple of ``(name, value)`` pairs so specs are
    hashable and comparable.
    """

    kind: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_options(cls, kind: str, **kwargs: Any) -> "TransformSpec":
        return cls(kind=kind, kwargs=tuple(sorted(kwargs.items())))

    def options(self) -> Dict[str, Any]:
        """The constructor keyword arguments as a plain dict."""
        return dict(self.kwargs)

    def create(self, degree: int) -> "NegacyclicTransform":
        """Instantiate the described engine through the registry."""
        return make_transform(self.kind, degree, **self.options())

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "kwargs": self.options()}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "TransformSpec":
        return cls.from_options(payload["kind"], **payload.get("kwargs", {}))


class NegacyclicTransform(abc.ABC):
    """Common interface of every polynomial-multiplication engine.

    A *spectrum* is an opaque per-engine representation of a polynomial in
    which addition and multiplication are cheap (pointwise for the FFT-based
    engines, plain coefficients for the naive engine).
    """

    #: Registry kind this engine class is constructed under (``None`` for
    #: ad-hoc engines such as test proxies, which cannot be serialized).
    engine_kind: ClassVar[Optional[str]] = None

    def __init__(self, degree: int) -> None:
        if degree <= 0 or degree & (degree - 1):
            raise ValueError("ring degree must be a power of two")
        self.degree = degree
        self.stats = TransformStats()

    # -- registry identity -------------------------------------------------
    def engine_options(self) -> Dict[str, Any]:
        """The constructor options needed to rebuild an equivalent engine."""
        return {}

    def spec(self) -> Optional[TransformSpec]:
        """A :class:`TransformSpec` for this engine, or ``None`` if unregistered."""
        if self.engine_kind is None:
            return None
        return TransformSpec.from_options(self.engine_kind, **self.engine_options())

    # -- conversions ------------------------------------------------------
    @abc.abstractmethod
    def forward(self, coeffs: np.ndarray) -> Spectrum:
        """Coefficients → Lagrange representation (the paper's IFFT kernel)."""

    @abc.abstractmethod
    def backward(self, spectrum: Spectrum) -> np.ndarray:
        """Lagrange representation → int64 coefficients (the paper's FFT kernel)."""

    # -- spectrum algebra --------------------------------------------------
    @abc.abstractmethod
    def spectrum_zero(self) -> Spectrum:
        """The spectrum of the zero polynomial."""

    @abc.abstractmethod
    def spectrum_add(self, a: Spectrum, b: Spectrum) -> Spectrum:
        """Pointwise addition of two spectra."""

    @abc.abstractmethod
    def spectrum_mul(self, a: Spectrum, b: Spectrum) -> Spectrum:
        """Pointwise multiplication of two spectra (ring product)."""

    def spectrum_copy(self, a: Spectrum) -> Spectrum:
        """An independent copy of a spectrum."""
        return np.array(a, copy=True)

    # -- stacked-spectrum helpers ------------------------------------------
    def spectrum_shape(self, spectrum: Spectrum) -> tuple:
        """The array shape of a spectrum (batch axes + the spectral axis)."""
        return np.asarray(spectrum).shape

    def spectrum_index(self, spectrum: Spectrum, index) -> Spectrum:
        """The sub-spectrum at ``index`` of a stacked spectrum.

        ``forward`` over a stack of polynomials returns a stacked spectrum;
        this accessor slices out one element (a view is fine — spectra are
        treated as immutable).  Engines with non-array spectra override it.
        """
        return spectrum[index]

    def spectrum_stack(self, spectra: Sequence[Spectrum]) -> Spectrum:
        """Stack same-shape spectra along a new leading axis.

        Raises ``ValueError`` when the operands cannot be stacked (e.g. the
        shapes differ); callers fall back to the per-term loop in that case.
        """
        return np.stack([np.asarray(s) for s in spectra])

    def spectrum_sum(self, spectrum: Spectrum) -> Spectrum:
        """Reduce a stacked spectrum along its leading axis (one pointwise op)."""
        self.stats.pointwise_ops += 1
        return np.sum(np.asarray(spectrum), axis=0)

    # -- convenience -------------------------------------------------------
    def multiply(self, int_poly: np.ndarray, torus_poly: np.ndarray) -> np.ndarray:
        """Negacyclic product reduced onto the 32-bit torus."""
        product = self.spectrum_mul(self.forward(int_poly), self.forward(torus_poly))
        return torus32_from_int64(self.backward(product))

    def multiply_accumulate(
        self,
        int_polys: Sequence[np.ndarray],
        spectra: Sequence[Spectrum],
    ) -> np.ndarray:
        """Compute ``sum_j int_polys[j] * spectra[j]`` reduced onto the torus.

        This is the inner loop of the external product: the decomposed
        accumulator rows are transformed, multiplied with the pre-transformed
        TGSW rows and accumulated in the Lagrange domain, and a single
        backward transform produces the result polynomial.
        """
        if len(int_polys) != len(spectra):
            raise ValueError("operand counts do not match")
        if not int_polys:
            return torus32_from_int64(self.backward(self.spectrum_zero()))
        polys = [np.asarray(p) for p in int_polys]
        spectra = list(spectra)
        # The vectorised path needs uniformly-shaped operands whose batch
        # axes already agree pairwise; anything else (e.g. batched polys
        # against scalar spectra, which the per-term loop handles through
        # broadcasting) takes the reference loop.
        poly_batch = polys[0].shape[:-1]
        spec_batch = self.spectrum_shape(spectra[0])[:-1]
        uniform = (
            all(p.shape == polys[0].shape for p in polys)
            and all(self.spectrum_shape(s)[:-1] == spec_batch for s in spectra)
            and poly_batch == spec_batch
        )
        if not uniform:
            acc = self.spectrum_zero()
            for poly, spec in zip(polys, spectra):
                acc = self.spectrum_add(acc, self.spectrum_mul(self.forward(poly), spec))
            return torus32_from_int64(self.backward(acc))
        # Vectorised path: one forward over the stacked rows, one stacked
        # pointwise product, one reduction — instead of a fresh spectrum
        # allocation per term.  Counters count calls (not stacked elements),
        # consistent with the batch semantics documented above.
        dec_spectra = self.forward(np.stack(polys))
        products = self.spectrum_mul(dec_spectra, self.spectrum_stack(spectra))
        return torus32_from_int64(self.backward(self.spectrum_sum(products)))

    def reset_stats(self) -> None:
        """Reset the engine's invocation counters."""
        self.stats.reset()


class NaiveNegacyclicTransform(NegacyclicTransform):
    """Exact engine: the "spectrum" is the coefficient vector itself.

    Spectrum multiplication is the exact negacyclic convolution, so this
    engine introduces no error at all.  It is quadratic in ``N`` and is only
    practical for the reduced test rings, where it serves as the ground truth
    for both FFT engines.
    """

    engine_kind = "naive"

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        self.stats.forward_calls += 1
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        return coeffs.copy()

    def backward(self, spectrum: np.ndarray) -> np.ndarray:
        self.stats.backward_calls += 1
        return np.asarray(spectrum, dtype=np.int64).copy()

    def spectrum_zero(self) -> np.ndarray:
        return np.zeros(self.degree, dtype=np.int64)

    def spectrum_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return a + b

    def spectrum_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return negacyclic_convolution_int64(a, b)


class DoubleFFTNegacyclicTransform(NegacyclicTransform):
    """Double-precision floating-point FFT engine (the TFHE-library baseline).

    A real polynomial of degree ``N`` is folded into ``N/2`` complex samples
    ``q_s = p_s + i p_{s + N/2}``, twisted by ``exp(i pi s / N)`` and run
    through an ``N/2``-point complex transform; the result holds the
    evaluations of the polynomial at the odd roots of unity
    ``exp(i pi (4u + 1) / N)``.  Pointwise products of these evaluations
    correspond exactly to negacyclic polynomial products.
    """

    engine_kind = "double"

    def __init__(self, degree: int) -> None:
        super().__init__(degree)
        half = degree // 2
        self._half = half
        s = np.arange(half)
        self._twist = np.exp(1j * np.pi * s / degree)
        self._untwist = np.exp(-1j * np.pi * s / degree)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        self.stats.forward_calls += 1
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        half = self._half
        folded = (coeffs[..., :half] + 1j * coeffs[..., half:]) * self._twist
        # Unnormalised inverse-sign DFT: S_u = sum_s folded_s e^{+2 pi i u s / half}
        return np.fft.ifft(folded, axis=-1) * half

    def backward(self, spectrum: np.ndarray) -> np.ndarray:
        self.stats.backward_calls += 1
        half = self._half
        spectrum = np.asarray(spectrum, dtype=np.complex128)
        folded = np.fft.fft(spectrum, axis=-1) / half
        folded = folded * self._untwist
        coeffs = np.empty(spectrum.shape[:-1] + (self.degree,), dtype=np.float64)
        coeffs[..., :half] = folded.real
        coeffs[..., half:] = folded.imag
        return np.round(coeffs).astype(np.int64)

    def spectrum_zero(self) -> np.ndarray:
        return np.zeros(self._half, dtype=np.complex128)

    def spectrum_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return a + b

    def spectrum_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.stats.pointwise_ops += 1
        return a * b


# --------------------------------------------------------------------------- #
# engine registry                                                             #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class EngineEntry:
    """One registered polynomial-multiplication engine."""

    kind: str
    factory: Callable[..., NegacyclicTransform]
    valid_kwargs: frozenset
    description: str = ""


_ENGINE_REGISTRY: Dict[str, EngineEntry] = {}


def register_engine(
    kind: str,
    factory: Callable[..., NegacyclicTransform],
    valid_kwargs: Sequence[str] = (),
    description: str = "",
) -> None:
    """Register a transform engine under ``kind``.

    ``factory(degree, **kwargs)`` must return a :class:`NegacyclicTransform`;
    ``valid_kwargs`` lists every keyword argument the factory accepts, so
    :func:`make_transform` can reject typos instead of silently forwarding
    bogus options.  Re-registering a kind replaces the previous entry.
    """
    if not kind:
        raise ValueError("engine kind must be a non-empty string")
    _ENGINE_REGISTRY[kind] = EngineEntry(
        kind=kind,
        factory=factory,
        valid_kwargs=frozenset(valid_kwargs),
        description=description,
    )


def available_engines() -> List[str]:
    """The registered engine kinds, sorted."""
    return sorted(_ENGINE_REGISTRY)


def engine_entry(kind: str) -> EngineEntry:
    """Look up a registry entry; unknown kinds list the valid alternatives."""
    try:
        return _ENGINE_REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown transform kind: {kind!r} (valid kinds: "
            f"{', '.join(available_engines())})"
        ) from None


def make_transform(kind: str, degree: int, **kwargs) -> NegacyclicTransform:
    """Instantiate a registered engine (``"naive"``, ``"double"``, ``"approx"``, ...).

    Keyword arguments are validated against the engine's registered option
    set before the factory runs, so a typo like ``twiddel_bits`` fails with
    the list of valid options instead of being silently dropped or crashing
    deep inside the engine constructor.
    """
    entry = engine_entry(kind)
    unknown = sorted(set(kwargs) - entry.valid_kwargs)
    if unknown:
        valid = ", ".join(sorted(entry.valid_kwargs)) or "(none)"
        raise ValueError(
            f"unknown option(s) {unknown} for transform kind {kind!r}; "
            f"valid options: {valid}"
        )
    return entry.factory(degree, **kwargs)


def _approx_factory(degree: int, **kwargs) -> NegacyclicTransform:
    # Imported lazily: repro.core builds on repro.tfhe, not the reverse.
    from repro.core.integer_fft import ApproximateNegacyclicTransform

    return ApproximateNegacyclicTransform(degree, **kwargs)


register_engine(
    "naive",
    NaiveNegacyclicTransform,
    description="exact schoolbook negacyclic products (ground truth)",
)
register_engine(
    "double",
    DoubleFFTNegacyclicTransform,
    description="double-precision floating-point FFT (TFHE-library baseline)",
)
register_engine(
    "approx",
    _approx_factory,
    valid_kwargs=("twiddle_bits", "target_msb"),
    description="MATCHA's approximate multiplication-less integer FFT",
)

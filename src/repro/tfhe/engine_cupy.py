"""Optional GPU engine on CuPy arrays (registry kind ``"cupy"``).

:class:`CupyNegacyclicTransform` runs the negacyclic transform trio — fold +
twist + IFFT forward, spectral algebra, FFT + untwist + round backward — on
the GPU via CuPy, with **pinned-host staging** for uploads and **device-side
gadget decomposition** so a fused external product touches the PCIe bus
exactly twice (ciphertext up, result down) instead of once per kernel.

Error model: ``fft64-device``.  The arithmetic is the same double-precision
model as the ``"double"``/``"compiled"`` CPU engines (exact integer folds,
float64 twist products, round-half-even), but cuFFT's butterfly ordering
rounds differently in the last bit, so raw ciphertext bits may differ from
the CPU engines while decrypted results agree — the cross-engine suite
checks decrypted-result equality for this engine instead of bit-identity.
The integer stages (gadget decomposition, negacyclic rotation, the mod-2^32
wraps) are exact on both sides and produce identical digits.

The module imports without CuPy; :func:`cupy_unavailable_reason` is the
availability probe the engine registry surfaces through
``available_engines()`` ("cupy: not installed", "cupy: no CUDA device", ...),
and constructing the engine on such a machine raises that same reason.

Spectra are CuPy ``complex128`` arrays living on the device.  They are *not*
plain NumPy ndarrays, so the :class:`repro.runtime.workers.WorkerPool`
shared-memory spectrum cache automatically declines to share them and each
worker rebuilds its device tensors from the cloud-key bytes — the same
rebuild path the BKU rotator uses.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.tfhe.transform import NegacyclicTransform, Spectrum
from repro.tfhe.torus import torus32_from_int64


def cupy_unavailable_reason() -> Optional[str]:
    """``None`` when CuPy and a CUDA device are usable here, else why not."""
    try:
        import cupy  # type: ignore
    except Exception:
        return "cupy: not installed"
    try:
        count = cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:
        return f"cupy: CUDA runtime unavailable ({type(exc).__name__})"
    if count < 1:
        return "cupy: no CUDA device"
    return None


class CupyNegacyclicTransform(NegacyclicTransform):
    """Double-precision negacyclic transform engine on CuPy device arrays.

    ``block_rows`` bounds how many batch rows of a fused external product are
    resident on the device at once (0 = unbounded); ``pinned_staging``
    toggles the page-locked host staging buffers used for uploads.
    """

    engine_kind = "cupy"

    def __init__(
        self, degree: int, block_rows: int = 0, pinned_staging: bool = True
    ) -> None:
        reason = cupy_unavailable_reason()
        if reason is not None:
            raise RuntimeError(f"cupy engine unavailable: {reason}")
        import cupy as cp  # type: ignore

        super().__init__(degree)
        if block_rows < 0:
            raise ValueError("block_rows must be >= 0")
        self._cp = cp
        self.block_rows = int(block_rows)
        self.pinned_staging = bool(pinned_staging)
        self._pinned: Dict[tuple, np.ndarray] = {}
        half = degree // 2
        self._half = half
        s = cp.arange(half)
        twist = cp.exp(1j * cp.pi * s / degree)
        untwist = cp.exp(-1j * cp.pi * s / degree)
        # Same normalisation folding as the CPU engines: half is a power of
        # two, so scaling the twist tables is an exact exponent shift.
        self._twist_scaled = twist * half
        self._untwist_normalised = untwist / half

    # -- registry identity -------------------------------------------------
    def engine_options(self) -> Dict[str, Any]:
        options: Dict[str, Any] = {}
        if self.block_rows:
            options["block_rows"] = self.block_rows
        if not self.pinned_staging:
            options["pinned_staging"] = False
        return options

    # -- staging -----------------------------------------------------------
    def _to_device(self, arr):
        """Host → device through a reusable pinned staging buffer.

        Page-locked staging lets the copy engine DMA directly instead of
        bouncing through a driver-allocated bounce buffer; buffers are cached
        per (shape, dtype) because bootstrapping re-uploads the same shapes
        every call.  Any pinned-allocation failure permanently degrades to
        pageable copies.
        """
        cp = self._cp
        if isinstance(arr, cp.ndarray):
            return arr
        arr = np.ascontiguousarray(arr)
        if self.pinned_staging:
            try:
                import cupyx  # type: ignore

                key = (arr.shape, arr.dtype.str)
                staging = self._pinned.get(key)
                if staging is None:
                    staging = cupyx.empty_pinned(arr.shape, arr.dtype)
                    self._pinned[key] = staging
                np.copyto(staging, arr)
                return cp.asarray(staging)
            except Exception:
                self.pinned_staging = False
        return cp.asarray(arr)

    # -- conversions --------------------------------------------------------
    def forward(self, coeffs) -> Spectrum:
        self.stats.forward_calls += 1
        cp = self._cp
        dev = self._to_device(coeffs)
        if dev.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        half = self._half
        folded = cp.empty(dev.shape[:-1] + (half,), dtype=cp.complex128)
        folded.real = dev[..., :half]
        folded.imag = dev[..., half:]
        folded *= self._twist_scaled
        return cp.fft.ifft(folded, axis=-1)

    def backward(self, spectrum: Spectrum) -> np.ndarray:
        self.stats.backward_calls += 1
        cp = self._cp
        spectrum = cp.asarray(spectrum, dtype=cp.complex128)
        folded = cp.fft.fft(spectrum, axis=-1)
        folded *= self._untwist_normalised
        cp.rint(folded, out=folded)
        half = self._half
        coeffs = cp.empty(spectrum.shape[:-1] + (self.degree,), dtype=cp.int64)
        coeffs[..., :half] = folded.real
        coeffs[..., half:] = folded.imag
        return coeffs.get()

    # -- spectrum algebra ----------------------------------------------------
    def spectrum_zero(self) -> Spectrum:
        return self._cp.zeros(self._half, dtype=self._cp.complex128)

    def spectrum_add(self, a: Spectrum, b: Spectrum) -> Spectrum:
        self.stats.pointwise_ops += 1
        return a + b

    def spectrum_mul(self, a: Spectrum, b: Spectrum) -> Spectrum:
        self.stats.pointwise_ops += 1
        return a * b

    def spectrum_copy(self, a: Spectrum) -> Spectrum:
        return self._cp.array(a, copy=True)

    def spectrum_shape(self, spectrum: Spectrum) -> tuple:
        return spectrum.shape

    def spectrum_expand(self, spectrum: Spectrum, axis: int) -> Spectrum:
        return self._cp.expand_dims(spectrum, axis)

    def spectrum_take_col(self, spectrum: Spectrum, col: int) -> Spectrum:
        return spectrum[..., col, :]

    def spectrum_stack(self, spectra: Sequence[Spectrum]) -> Spectrum:
        return self._cp.stack([self._cp.asarray(s) for s in spectra])

    def spectrum_sum(self, spectrum: Spectrum) -> Spectrum:
        self.stats.pointwise_ops += 1
        return self._cp.sum(spectrum, axis=0)

    def spectrum_contract(self, stack: Spectrum, operand: Spectrum) -> Spectrum:
        """One broadcast product + one device reduction (two pointwise ops).

        The ``fft64-device`` error model does not promise an accumulation
        order, so the reduction uses the device's tree sum.
        """
        self.stats.pointwise_ops += 2
        cp = self._cp
        if stack.shape[0] == 0:
            raise ValueError("cannot contract an empty digit stack")
        expanded = stack[..., None, :]
        target = max(expanded.ndim, operand.ndim)
        if expanded.ndim < target:
            expanded = expanded.reshape(
                expanded.shape[:1] + (1,) * (target - expanded.ndim) + expanded.shape[1:]
            )
        if operand.ndim < target:
            operand = operand.reshape(
                operand.shape[:1] + (1,) * (target - operand.ndim) + operand.shape[1:]
            )
        return cp.sum(expanded * operand, axis=0)

    # -- device-side fused external product ----------------------------------
    def _decompose_rows_device(self, shifted, length: int, base_bits: int):
        """Digit planes of an offset-added uint32 tensor, on the device.

        Mirrors :func:`repro.tfhe.tgsw._extract_digit_planes` (same shifts,
        mask and ``− Bg/2`` wrap, exact integer arithmetic → identical
        digits): ``shifted`` is ``(..., k+1, N)`` uint32, the result the
        ``((k+1)·l, ..., N)`` int32 digit stack in gadget row order.
        """
        cp = self._cp
        blocks = shifted.shape[-2]
        degree = shifted.shape[-1]
        batch = shifted.shape[:-2]
        mask = cp.uint32((1 << base_bits) - 1)
        half_base = cp.uint32(1 << (base_bits - 1))
        shifts = cp.asarray(
            [32 - (j + 1) * base_bits for j in range(length)], dtype=cp.uint32
        ).reshape((length,) + (1,) * shifted.ndim)
        scratch = (shifted >> shifts) & mask
        scratch -= half_base
        planes = scratch.view(cp.int32)
        ndim = planes.ndim
        planes = planes.transpose((ndim - 2, 0, *range(1, ndim - 2), ndim - 1))
        digits = cp.ascontiguousarray(planes).reshape(
            (blocks * length,) + batch + (degree,)
        )
        return digits

    def _rotated_difference_device(self, unsigned, power: int):
        """``(X^power − 1)·data`` on uint32 device data (exact mod-2^32)."""
        cp = self._cp
        degree = unsigned.shape[-1]
        power = int(power) % (2 * degree)
        shift = power % degree
        rotated = cp.empty_like(unsigned)
        if shift:
            rotated[..., :shift] = unsigned[..., degree - shift :]
            cp.negative(rotated[..., :shift], out=rotated[..., :shift])
            rotated[..., shift:] = unsigned[..., : degree - shift]
        else:
            rotated[...] = unsigned
        if power >= degree:
            cp.negative(rotated, out=rotated)
        rotated -= unsigned
        return rotated

    def device_external_product(
        self, tensor: Spectrum, data: np.ndarray, params, reduce: bool = True
    ) -> np.ndarray:
        """Fused TGSW ⊡ TLWE entirely on the device (one upload, one download).

        ``data`` is the host ``(..., k+1, N)`` int32 TLWE array; the gadget
        decomposition, the stacked forward, the contraction against the
        resident key ``tensor`` and the backward all run device-side.
        Honours ``block_rows`` by chunking leading batch rows.
        """
        if (
            self.block_rows
            and data.ndim > 2
            and data.shape[0] > self.block_rows
        ):
            chunks = [
                self.device_external_product(
                    tensor, data[start : start + self.block_rows], params, reduce
                )
                for start in range(0, data.shape[0], self.block_rows)
            ]
            return np.concatenate(chunks, axis=0)
        cp = self._cp
        dev = self._to_device(np.ascontiguousarray(data)).view(cp.uint32)
        offset = cp.uint32(_decomposition_offset(params))
        digits = self._decompose_rows_device(
            dev + offset, params.decomp_length, params.decomp_base_bits
        )
        coeffs = self._backward_contract(digits, tensor)
        return torus32_from_int64(coeffs) if reduce else coeffs

    def device_cmux_rotate(
        self, tensor: Spectrum, data: np.ndarray, power: int, params
    ) -> np.ndarray:
        """Raw int64 product ``TGSW ⊡ ((X^power − 1)·ACC)``, device-side.

        The caller (:func:`repro.tfhe.tgsw._cmux_rotate_data`) adds the
        accumulator back and wraps mod 2^32, exactly like the CPU path.
        """
        cp = self._cp
        dev = self._to_device(np.ascontiguousarray(data)).view(cp.uint32)
        offset = cp.uint32(_decomposition_offset(params))
        shifted = self._rotated_difference_device(dev, power)
        shifted += offset
        digits = self._decompose_rows_device(
            shifted, params.decomp_length, params.decomp_base_bits
        )
        return self._backward_contract(digits, tensor)

    def _backward_contract(self, digits, tensor) -> np.ndarray:
        """forward → contract → backward on resident device operands."""
        self.stats.forward_calls += 1
        cp = self._cp
        half = self._half
        folded = cp.empty(digits.shape[:-1] + (half,), dtype=cp.complex128)
        folded.real = digits[..., :half]
        folded.imag = digits[..., half:]
        folded *= self._twist_scaled
        spectra = cp.fft.ifft(folded, axis=-1)
        acc = self.spectrum_contract(spectra, tensor)
        return self.backward(acc)


def _decomposition_offset(params) -> int:
    from repro.tfhe.tgsw import decomposition_offset

    return int(decomposition_offset(params))

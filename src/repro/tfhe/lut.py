"""Boolean lookup tables over the gate-bootstrapping encoding.

A ``lut`` netlist node evaluates an arbitrary k-input boolean function in a
*single* bootstrapping, replacing the cone of 2-input gates that would
otherwise compute it.  Inputs are ordinary gate ciphertexts (messages at
``±1/8``), so the only degree of freedom before the blind rotation is an
affine combination with small integer weights::

    combined = offset/8 + Σ w_i · c_i        (c_i encrypts (2·b_i − 1)/8)

The phase of ``combined`` lands on one of the eight torus slices
``t(b) = (offset + Σ w_i·(2·b_i − 1)) mod 8`` and the test polynomial assigns
an output bit to each slice.  Because the blind rotation is negacyclic, the
slices ``t`` and ``t + 4`` are forced to carry *complementary* outputs — not
every truth table admits weights that respect this, so the spec search simply
reports infeasible tables and the compiler leaves those cones as plain gates.
The classic wins are feasible: XOR3 (weights ``2,2,2``), MAJ3 (``1,1,1``),
and with them a full adder in two bootstrappings instead of five.

The searched weight/offset space reproduces the affine forms of all stock
gates (every entry of :data:`repro.tfhe.gates.MIXED_GATE_SPECS` is the arity-2
special case), and the weight cost ``Σ w_i²`` — the input-noise amplification
factor — is minimised and capped so lut rows keep the gate decision margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import List, Optional, Tuple

import numpy as np

from repro.tfhe.params import TFHEParameters

#: Largest lut arity the netlist layer accepts (truth tables stay ≤ 16 bits).
MAX_LUT_ARITY = 4

#: Cap on the input-noise amplification ``Σ w_i²`` of a lut row.  XOR — the
#: noisiest stock gate — costs 8; XOR4 (weights ``2,2,2,2``) costs 16, which
#: still clears the gate margin on every shipped parameter set.
MAX_WEIGHT_COST = 16


@dataclass(frozen=True)
class BooleanLutSpec:
    """A realisable k-input boolean LUT: affine weights plus slice outputs.

    ``slices[t]`` is the output bit produced when the combined phase lands on
    torus slice ``t/8``; the negacyclic constraint ``slices[t+4] = 1 −
    slices[t]`` holds by construction.
    """

    table: int
    arity: int
    weights: Tuple[int, ...]
    offset_eighths: int
    slices: Tuple[int, ...]

    @property
    def weight_cost(self) -> int:
        """Input-noise amplification factor ``Σ w_i²`` of the affine stage."""
        return sum(w * w for w in self.weights)

    def evaluate(self, bits: Tuple[int, ...]) -> int:
        """Plaintext evaluation (used by tests and the co-simulator)."""
        index = sum(int(b) << i for i, b in enumerate(bits))
        return (self.table >> index) & 1


def lut_table_bit(table: int, bits) -> int:
    """Read one truth-table output: ``bits[0]`` indexes the least bit."""
    index = 0
    for i, b in enumerate(bits):
        index |= (int(b) & 1) << i
    return (table >> index) & 1


@lru_cache(maxsize=None)
def _candidates(arity: int) -> Tuple[Tuple[Tuple[int, ...], int, Tuple[int, ...]], ...]:
    """All (weights, offset, slice-masks) candidates for one arity.

    ``slice_masks[t]`` is the bitmask of input combinations whose phase lands
    on slice ``t`` — precomputed once per arity so per-table feasibility is a
    handful of mask comparisons per candidate.  Candidates are ordered by
    weight cost (then lexicographically) so the first feasible hit is also the
    lowest-noise realisation, deterministically.
    """
    weight_range = range(-3, 4)
    combos = []
    for weights in product(weight_range, repeat=arity):
        cost = sum(w * w for w in weights)
        if cost == 0 or cost > MAX_WEIGHT_COST:
            continue
        combos.append((cost, weights))
    combos.sort()
    out = []
    for cost, weights in combos:
        for offset in range(8):
            masks = [0] * 8
            for index in range(1 << arity):
                t = offset
                for i, w in enumerate(weights):
                    t += w * (2 * ((index >> i) & 1) - 1)
                masks[t % 8] |= 1 << index
            out.append((weights, offset, tuple(masks)))
    return tuple(out)


@lru_cache(maxsize=None)
def boolean_lut_spec(table: int, arity: int) -> Optional[BooleanLutSpec]:
    """The cheapest affine realisation of ``table``, or ``None`` if infeasible.

    Deterministic and memoised per ``(table, arity)``.
    """
    if not 1 <= arity <= MAX_LUT_ARITY:
        raise ValueError(f"lut arity must lie in [1, {MAX_LUT_ARITY}]")
    size = 1 << arity
    if not 0 <= table < (1 << size):
        raise ValueError(f"truth table for {arity} inputs must fit {size} bits")
    for weights, offset, masks in _candidates(arity):
        slices: List[Optional[int]] = [None] * 8
        feasible = True
        for t in range(8):
            mask = masks[t]
            if not mask:
                continue
            hits = table & mask
            if hits == 0:
                bit = 0
            elif hits == mask:
                bit = 1
            else:
                feasible = False
                break
            slices[t] = bit
        if not feasible:
            continue
        for t in range(4):
            a, b = slices[t], slices[t + 4]
            if a is not None and b is not None and a == b:
                feasible = False
                break
        if not feasible:
            continue
        for t in range(4):
            a, b = slices[t], slices[t + 4]
            if a is None and b is None:
                slices[t], slices[t + 4] = 0, 1
            elif a is None:
                slices[t] = 1 - b
            elif b is None:
                slices[t + 4] = 1 - a
        return BooleanLutSpec(
            table=table,
            arity=arity,
            weights=weights,
            offset_eighths=offset,
            slices=tuple(slices),
        )
    return None


def lut_test_vector(params: TFHEParameters, spec: BooleanLutSpec) -> np.ndarray:
    """The slice-valued test polynomial realising ``spec`` on this ring.

    Coefficient ``j`` covers phases around ``j/(2N)``; the owning eighth-slice
    is ``t(j) = round(4j/N)``, where ``t = 4`` picks up the negacyclic
    complement of slice 0 (the construction guarantees ``slices[4] = 1 −
    slices[0]``, so the wrap is consistent).
    """
    return _lut_test_vector_cached(params.N, spec.slices)


@lru_cache(maxsize=None)
def _lut_test_vector_cached(degree: int, slices: Tuple[int, ...]) -> np.ndarray:
    from repro.tfhe.gates import MU

    j = np.arange(degree, dtype=np.int64)
    t = (4 * j + degree // 2) // degree  # in [0, 4]
    bits = np.array(slices, dtype=np.int64)[t]
    vector = np.where(bits != 0, np.int64(MU), -np.int64(MU)).astype(np.int32)
    vector.setflags(write=False)
    return vector

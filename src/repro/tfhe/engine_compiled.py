"""Compiled CPU fast path for the double-precision FFT engine.

:class:`CompiledNegacyclicTransform` accelerates the hot trio of the fused
external product — the stacked negacyclic *forward* (fold + twist + IFFT),
the fused ``spectrum_contract`` row-fold, and the *backward* (FFT + untwist +
round) — while staying **bit-identical** to
:class:`repro.tfhe.transform.DoubleFFTNegacyclicTransform` (error model
``fft64``).

Two tiers, chosen at construction time:

* **Numba JIT** (optional dependency): the twist/fold, untwist/round and
  row-contraction loops are compiled to native code.  The FFT core itself
  stays on pocketfft — NumPy's FFT is already native and bit-identity of a
  reimplemented FFT could not be guaranteed — so the JIT only replaces the
  NumPy *glue* around it, which at TFHE ring sizes is a comparable cost to
  the transform itself (temporaries, dispatch, two passes over memory).
  Every jitted kernel uses the same arithmetic as the NumPy expression it
  replaces (naive complex multiply, sequential row accumulation, IEEE
  round-half-even via ``np.rint``) and ``fastmath`` stays **off**, so no FMA
  contraction or reassociation can creep in.  On top of that, a construction
  time self-test runs each kernel against its NumPy reference on probe data
  and silently disables the JIT tier on any mismatch — bit-identity is
  enforced, not assumed.

* **Cache-blocked NumPy fallback** (always available): the contraction
  accumulates row products in place, block by block along the spectral axis,
  instead of materialising the full ``(rows, ..., k+1, N/2)`` products tensor
  that the reference engine reduces over.  Every output element still sees
  the exact sequential row-order addition, so results stay bit-identical;
  only the peak temporary footprint (and the cache traffic that comes with
  it) shrinks.  This tier is what registers the ``"compiled"`` engine on
  machines without Numba.

Use ``require_numba=True`` to fail construction when the JIT tier is
unavailable (the optional-deps CI job does this so the compiled suite cannot
silently regress to the fallback).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.tfhe.transform import DoubleFFTNegacyclicTransform, _align_contraction_axes

_DEFAULT_BLOCK = 65536  # spectral elements per fallback contraction block

_numba_reason: Optional[str] = None
try:  # pragma: no cover - depends on the environment
    import numba  # type: ignore

    _njit = numba.njit
except Exception as exc:  # pragma: no cover - the common CI environment
    numba = None
    _njit = None
    _numba_reason = f"numba: not importable ({type(exc).__name__})"


def numba_unavailable_reason() -> Optional[str]:
    """``None`` when Numba imports here, else a human-readable reason."""
    return _numba_reason


# --------------------------------------------------------------------------- #
# jitted kernels (module-level so compilation is shared across instances)     #
# --------------------------------------------------------------------------- #

_JIT_CACHE: Dict[bool, Optional[dict]] = {}


def _build_jit_kernels(parallel: bool) -> Optional[dict]:  # pragma: no cover
    """Compile (once per ``parallel`` flag) the three hot kernels, or ``None``.

    Compilation failures — an incompatible Numba, a read-only cache dir —
    degrade to the NumPy tier instead of raising.
    """
    if _njit is None:
        return None
    if parallel in _JIT_CACHE:
        return _JIT_CACHE[parallel]
    try:
        prange = numba.prange if parallel else range
        jit = _njit(parallel=parallel, cache=not parallel, fastmath=False)

        @jit
        def fold_twist(coeffs, twist, out):
            # (batch, N) float64  ×  (half,) complex  →  (batch, half) complex
            # Same arithmetic as ``folded.real = lo; folded.imag = hi;
            # folded *= twist``: one naive complex multiply per sample.
            batch, half = out.shape
            for b in prange(batch):
                for s in range(half):
                    re = coeffs[b, s]
                    im = coeffs[b, s + half]
                    t = twist[s]
                    out[b, s] = complex(
                        re * t.real - im * t.imag, re * t.imag + im * t.real
                    )

        @jit
        def untwist_round(folded, untwist, out):
            # (batch, half) complex  ×  (half,) complex  →  (batch, N) int64
            # ``folded *= untwist; np.rint(folded); split`` — np.rint lowers
            # to llvm.rint (IEEE round-half-even), matching the NumPy ufunc.
            batch, half = folded.shape
            for b in prange(batch):
                for s in range(half):
                    f = folded[b, s]
                    u = untwist[s]
                    out[b, s] = np.int64(np.rint(f.real * u.real - f.imag * u.imag))
                    out[b, s + half] = np.int64(np.rint(f.real * u.imag + f.imag * u.real))

        @jit
        def contract(stack, operand, out):
            # (rows, B, half) × (rows, OB, C, half) → (B, C, half), OB ∈ {1, B}
            # Sequential accumulation in row order; starting from 0.0 is
            # exact, so this matches ``np.add.reduce(products, axis=0)``
            # bit for bit (no FMA: fastmath is off).
            rows, batch, half = stack.shape
            obatch = operand.shape[1]
            cols = operand.shape[2]
            for b in prange(batch):
                ob = b if obatch > 1 else 0
                for c in range(cols):
                    for s in range(half):
                        acc_re = 0.0
                        acc_im = 0.0
                        for r in range(rows):
                            a = stack[r, b, s]
                            o = operand[r, ob, c, s]
                            acc_re += a.real * o.real - a.imag * o.imag
                            acc_im += a.real * o.imag + a.imag * o.real
                        out[b, c, s] = complex(acc_re, acc_im)

        kernels = {
            "fold_twist": fold_twist,
            "untwist_round": untwist_round,
            "contract": contract,
        }
    except Exception:
        kernels = None
    _JIT_CACHE[parallel] = kernels
    return kernels


class CompiledNegacyclicTransform(DoubleFFTNegacyclicTransform):
    """JIT-compiled (or cache-blocked) drop-in for the ``"double"`` engine.

    Spectra are plain complex128 ndarrays exactly like the parent's, so
    everything downstream — :class:`~repro.tfhe.tgsw.TransformedTgswSample`
    tensors, the :class:`~repro.runtime.workers.WorkerPool` shared-memory
    spectrum cache, serialization round-trips — works unchanged.
    """

    engine_kind = "compiled"

    def __init__(
        self,
        degree: int,
        block_size: int = _DEFAULT_BLOCK,
        parallel: bool = False,
        require_numba: bool = False,
    ) -> None:
        super().__init__(degree)
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = int(block_size)
        self.parallel = bool(parallel)
        self._kernels = _build_jit_kernels(self.parallel)
        if self._kernels is not None and not self._verify_kernels():
            self._kernels = None  # pragma: no cover - defensive
        #: True when the Numba tier is active (observable by benches/tests).
        self.jit_enabled = self._kernels is not None
        if require_numba and not self.jit_enabled:
            raise RuntimeError(
                "compiled engine: require_numba=True but the JIT tier is "
                f"unavailable ({_numba_reason or 'kernel self-test failed'})"
            )

    # -- registry identity -------------------------------------------------
    def engine_options(self) -> Dict[str, Any]:
        options: Dict[str, Any] = {}
        if self.block_size != _DEFAULT_BLOCK:
            options["block_size"] = self.block_size
        if self.parallel:
            options["parallel"] = True
        # require_numba is a construction-time assertion, not an engine
        # property: a key generated under it must stay loadable on
        # fallback-only machines, so it is deliberately not serialized.
        return options

    # -- JIT self-test ------------------------------------------------------
    def _verify_kernels(self) -> bool:  # pragma: no cover - needs numba
        """Probe every jitted kernel against its NumPy reference, exactly.

        Any mismatch (an FMA-contracting build, a rounding difference)
        disables the JIT tier so the ``fft64`` bit-identity contract can
        never be violated — the engine just runs at fallback speed.
        """
        try:
            rng = np.random.default_rng(0xC0DE)
            half = self._half
            probe = rng.integers(-(2**31), 2**31, size=(3, self.degree)).astype(
                np.float64
            )
            out = np.empty((3, half), dtype=np.complex128)
            self._kernels["fold_twist"](probe, self._twist_scaled, out)
            folded = np.empty((3, half), dtype=np.complex128)
            folded.real = probe[:, :half]
            folded.imag = probe[:, half:]
            folded *= self._twist_scaled
            if not np.array_equal(out, folded):
                return False

            spectra = (rng.standard_normal((3, half)) * 2**20
                       + 1j * rng.standard_normal((3, half)) * 2**20)
            iout = np.empty((3, self.degree), dtype=np.int64)
            self._kernels["untwist_round"](spectra, self._untwist_normalised, iout)
            ref = spectra * self._untwist_normalised
            np.rint(ref, out=ref)
            iref = np.empty((3, self.degree), dtype=np.int64)
            iref[:, :half] = ref.real
            iref[:, half:] = ref.imag
            if not np.array_equal(iout, iref):
                return False

            stack = rng.standard_normal((4, 3, half)) + 1j * rng.standard_normal(
                (4, 3, half)
            )
            tensor = rng.standard_normal((4, 1, 2, half)) + 1j * rng.standard_normal(
                (4, 1, 2, half)
            )
            cout = np.empty((3, 2, half), dtype=np.complex128)
            self._kernels["contract"](stack, tensor, cout)
            cref = np.add.reduce(stack[:, :, None, :] * tensor, axis=0)
            return np.array_equal(cout, cref)
        except Exception:
            return False

    # -- conversions --------------------------------------------------------
    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        if self._kernels is None:
            return super().forward(coeffs)
        self.stats.forward_calls += 1  # pragma: no cover - needs numba
        coeffs = np.asarray(coeffs)
        if coeffs.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        # The float64 cast is exact for every torus/digit value (< 2^53).
        flat = np.ascontiguousarray(coeffs, dtype=np.float64).reshape(
            -1, self.degree
        )
        folded = np.empty((flat.shape[0], self._half), dtype=np.complex128)
        self._kernels["fold_twist"](flat, self._twist_scaled, folded)
        return self._ifft(folded).reshape(coeffs.shape[:-1] + (self._half,))

    def backward(self, spectrum: np.ndarray) -> np.ndarray:
        if self._kernels is None:
            return super().backward(spectrum)
        self.stats.backward_calls += 1  # pragma: no cover - needs numba
        spectrum = np.asarray(spectrum, dtype=np.complex128)
        folded = self._fft(spectrum)
        flat = np.ascontiguousarray(folded).reshape(-1, self._half)
        coeffs = np.empty((flat.shape[0], self.degree), dtype=np.int64)
        self._kernels["untwist_round"](flat, self._untwist_normalised, coeffs)
        return coeffs.reshape(spectrum.shape[:-1] + (self.degree,))

    # -- fused contraction ---------------------------------------------------
    def spectrum_contract(self, stack: np.ndarray, operand: np.ndarray) -> np.ndarray:
        """Row-fold without the full products tensor (JIT or blocked NumPy).

        Counts the same two pointwise ops as the reference implementation
        and produces bit-identical results: multiplication is elementwise
        and every output element accumulates its rows sequentially in row
        order, exactly like ``np.add.reduce(products, axis=0)``.
        """
        self.stats.pointwise_ops += 2
        stack = np.asarray(stack)
        operand = np.asarray(operand)
        if stack.shape[0] == 0:
            raise ValueError("cannot contract an empty digit stack")
        expanded, operand = _align_contraction_axes(stack[..., None, :], operand)
        if self._kernels is not None:
            jitted = self._contract_jit(expanded, operand)
            if jitted is not None:  # pragma: no cover - needs numba
                return jitted
        return self._contract_blocked(expanded, operand)

    def _contract_jit(
        self, expanded: np.ndarray, operand: np.ndarray
    ) -> Optional[np.ndarray]:  # pragma: no cover - needs numba
        """The jitted contraction for the common batch layouts, else ``None``.

        Handles ``(rows, [B,] 1, half)`` digit stacks against
        ``(rows, [B|1,] C, half)`` key tensors — i.e. everything the fused
        external product and the rotators produce.  Exotic layouts (extra
        batch axes from ad-hoc callers) fall back to the blocked path.
        """
        if expanded.ndim == 3 and operand.ndim == 3:
            stack3 = expanded[:, None, 0, :]
            operand4 = operand[:, None, :, :]
            out_shape = operand.shape[1:]
        elif expanded.ndim == 4 and operand.ndim == 4:
            if expanded.shape[2] != 1 or operand.shape[1] not in (1, expanded.shape[1]):
                return None
            stack3 = expanded[:, :, 0, :]
            operand4 = operand
            out_shape = (expanded.shape[1],) + operand.shape[2:]
        else:
            return None
        out = np.empty(
            (stack3.shape[1], operand4.shape[2], operand4.shape[3]),
            dtype=np.complex128,
        )
        self._kernels["contract"](
            np.ascontiguousarray(stack3, dtype=np.complex128),
            np.ascontiguousarray(operand4, dtype=np.complex128),
            out,
        )
        return out.reshape(out_shape)

    def _contract_blocked(
        self, expanded: np.ndarray, operand: np.ndarray
    ) -> np.ndarray:
        """In-place sequential row accumulation, blocked along the last axis.

        Peak extra memory is one output-sized accumulator plus one
        block-sized scratch row, versus the reference's full
        ``(rows, ..., k+1, N/2)`` products tensor.
        """
        out_shape = np.broadcast_shapes(expanded.shape, operand.shape)[1:]
        out = np.empty(out_shape, dtype=np.complex128)
        scratch = np.empty(out_shape[:-1] + (min(self.block_size, out_shape[-1]),),
                           dtype=np.complex128)
        rows = expanded.shape[0]
        width = out_shape[-1]
        for start in range(0, width, self.block_size):
            stop = min(start + self.block_size, width)
            out_blk = out[..., start:stop]
            scratch_blk = scratch[..., : stop - start]
            np.multiply(
                expanded[0, ..., start:stop], operand[0, ..., start:stop], out=out_blk
            )
            for row in range(1, rows):
                np.multiply(
                    expanded[row, ..., start:stop],
                    operand[row, ..., start:stop],
                    out=scratch_blk,
                )
                out_blk += scratch_blk
        return out

"""Level-parallel execution of circuit netlists.

The scheduler half of this module turns a :class:`repro.tfhe.netlist.Circuit`
into a :class:`LevelSchedule`: the netlist is exported to the architecture
package's :class:`repro.arch.dfg.DataFlowGraph` and levelized with its ASAP
machinery — bootstrapped gates advance the level, linear nodes (inputs,
constants, NOT, copy) are free — so every level is a set of mutually
independent bootstrapped gates.  This is the paper's compile-to-DFG /
solve-dependencies flow (Section 5) applied to whole circuits instead of the
inside of one gate.

The executor half then *feeds the batched bootstrapping engine*: each level's
gates, over all words of the data batch, become **one**
:meth:`repro.tfhe.gates.BatchGateEvaluator.gate_rows` call — a single mixed
affine combination, blind rotation, extraction and key switch over
``gates_in_level × words`` rows.  Against the eager gate-by-gate path the
executor therefore wins twice: the level width multiplies the row count of
every batched call (level parallelism), and the data batch multiplies it
again (word parallelism); :func:`repro.core.pipeline.circuit_level_cycles`
is the analytic counterpart on the accelerator model.

Both paths are bit-identical: :func:`execute` is the eager reference (works
with the scalar and the batched evaluator alike) and
:class:`CircuitExecutor.run` is the levelized engine; the test-suite
property-checks that their output ciphertexts match bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.arch.ops import OpType
from repro.tfhe.gates import (
    BatchGateEvaluator,
    gate_affine_batch,
    lut_affine_batch,
    require_lut_spec,
)
from repro.tfhe.lut import lut_test_vector
from repro.tfhe.lwe import LweBatch, LweSample, lwe_batch_concat
from repro.tfhe.netlist import Circuit


@dataclass(frozen=True)
class LevelSchedule:
    """A levelized execution plan for one circuit.

    ``waves[k]`` holds the bootstrapped gates of dependency level ``k + 1``;
    the gates of one wave are mutually independent, so the executor issues
    each wave as a single batched bootstrapping call.  ``linear[k]`` holds
    the live bootstrap-free nodes (inputs, constants, NOT, copy) resolved
    after wave ``k`` (``linear[0]`` before any wave), in SSA order.
    """

    circuit: Circuit
    output_names: Tuple[str, ...]
    waves: Tuple[Tuple[int, ...], ...]
    linear: Tuple[Tuple[int, ...], ...]

    @property
    def depth(self) -> int:
        """Number of bootstrapped dependency levels (the gate critical path)."""
        return len(self.waves)

    @property
    def gate_count(self) -> int:
        """Total live bootstrapped gates in the plan."""
        return sum(len(wave) for wave in self.waves)

    @property
    def level_widths(self) -> List[int]:
        """Gates per level, in execution order (the gates/level histogram)."""
        return [len(wave) for wave in self.waves]

    @property
    def mean_width(self) -> float:
        """Average gates per level — the level-parallelism of the circuit."""
        return self.gate_count / self.depth if self.depth else 0.0

    @property
    def max_width(self) -> int:
        """Widest level (peak number of concurrent bootstrappings)."""
        return max(self.level_widths, default=0)

    def width_histogram(self) -> Dict[int, int]:
        """``width → number of levels with that many gates``."""
        histogram: Dict[int, int] = {}
        for width in self.level_widths:
            histogram[width] = histogram.get(width, 0) + 1
        return dict(sorted(histogram.items()))


def schedule_circuit(
    circuit: Circuit, outputs: Sequence[str] | None = None
) -> LevelSchedule:
    """Levelize the output cone of ``circuit`` into a :class:`LevelSchedule`.

    The netlist is exported to a :class:`repro.arch.dfg.DataFlowGraph` and
    bucketed with its ASAP ``levelize``; only bootstrapped gates carry level
    cost, so NOT/copy/constant chains never lengthen the schedule.  Dead
    nodes (outside the cone of the requested outputs) are dropped entirely.
    """
    output_names = tuple(outputs) if outputs is not None else tuple(circuit.output_wires)
    live = circuit.live_nodes(output_names)
    dfg = circuit.to_dfg(output_names)
    cost = lambda node: 1 if node.op is OpType.BOOTSTRAPPED_GATE else 0  # noqa: E731
    buckets = dfg.levelize(cost)
    waves: List[Tuple[int, ...]] = []
    linear: List[Tuple[int, ...]] = []
    for level, bucket in enumerate(buckets):
        bucket = [nid for nid in bucket if nid in live]
        waves_here = tuple(n for n in bucket if circuit.node(n).is_bootstrapped)
        linear_here = tuple(n for n in bucket if not circuit.node(n).is_bootstrapped)
        if level > 0:
            waves.append(waves_here)
        linear.append(linear_here)
    # Drop trailing all-empty levels (possible when the deepest live node is
    # linear); keep `linear` exactly one entry longer than `waves`.
    while waves and not waves[-1] and not linear[len(waves)]:
        waves.pop()
        linear.pop()
    return LevelSchedule(
        circuit=circuit,
        output_names=output_names,
        waves=tuple(waves),
        linear=tuple(linear),
    )


def _gather_inputs(
    circuit: Circuit,
    inputs: Mapping[str, Sequence],
    live: set,
) -> Dict[int, object]:
    """Map live input wires to the caller-provided ciphertexts."""
    values: Dict[int, object] = {}
    for name, wires in circuit.input_wires.items():
        if not any(w in live for w in wires):
            continue
        if name not in inputs:
            raise ValueError(f"missing circuit input {name!r}")
        provided = list(inputs[name])
        if len(provided) != len(wires):
            raise ValueError(
                f"input {name!r} expects {len(wires)} bits, got {len(provided)}"
            )
        for wire, value in zip(wires, provided):
            values[wire] = value
    return values


def execute(
    circuit: Circuit,
    evaluator,
    inputs: Mapping[str, Sequence],
    outputs: Sequence[str] | None = None,
) -> Dict[str, List]:
    """Eager gate-by-gate evaluation of a netlist (the reference path).

    ``evaluator`` may be a :class:`repro.tfhe.gates.TFHEGateEvaluator` with
    scalar :class:`LweSample` input bits or a
    :class:`repro.tfhe.gates.BatchGateEvaluator` with :class:`LweBatch` bit
    planes — the netlist only invokes the shared evaluator surface
    (``gate``/``not_``/``copy``/``constant``).  Gates are issued one at a
    time in SSA order, exactly like the historical helpers of
    :mod:`repro.tfhe.circuits`; only the live cone of the requested outputs
    is evaluated.  Returns ``{output name: list of bit ciphertexts}``.
    """
    output_names = tuple(outputs) if outputs is not None else tuple(circuit.output_wires)
    live = circuit.live_nodes(output_names)
    values = _gather_inputs(circuit, inputs, live)
    for node in circuit.nodes:
        if node.node_id not in live or node.op == "input":
            continue
        if node.op == "const":
            values[node.node_id] = evaluator.constant(node.value)
        elif node.op == "not":
            values[node.node_id] = evaluator.not_(values[node.args[0]])
        elif node.op == "copy":
            values[node.node_id] = evaluator.copy(values[node.args[0]])
        elif node.op == "lut":
            values[node.node_id] = evaluator.lut(
                node.value, [values[a] for a in node.args]
            )
        else:
            values[node.node_id] = evaluator.gate(
                node.op, values[node.args[0]], values[node.args[1]]
            )
    return {
        name: [values[w] for w in circuit.output_wires[name]] for name in output_names
    }


class CircuitExecutor:
    """Runs levelized circuits on the batched bootstrapping engine.

    The executor owns a :class:`repro.tfhe.gates.BatchGateEvaluator` whose
    ``batch_size`` is the number of *words* processed per run (wires carry
    :class:`LweBatch` bit planes of that width; use ``batch_size=1`` with
    :meth:`run_samples` for plain single-word circuits).  Every dependency
    level of the schedule becomes one
    :meth:`~repro.tfhe.gates.BatchGateEvaluator.gate_rows` call of
    ``level width × batch_size`` rows::

        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=16))
        planes = executor.run(adder_netlist(32), {"a": a_planes, "b": b_planes})

    ``evaluator.counters`` tracks gates/bootstraps as usual;
    ``executor.level_calls`` counts the batched bootstrapping calls issued,
    i.e. the schedule depth summed over runs.
    """

    def __init__(self, evaluator: BatchGateEvaluator) -> None:
        self.evaluator = evaluator
        self.level_calls = 0

    @classmethod
    def for_context(cls, context, batch_size: int) -> "CircuitExecutor":
        """An executor over ``batch_size`` words bound to an ``FheContext``.

        The evaluator comes from the context's per-width cache, so repeated
        executors share both the batched evaluator and the context's
        cloud-key spectrum cache.
        """
        return cls(context.batch_evaluator(batch_size))

    @property
    def batch_size(self) -> int:
        """Words processed per run (the evaluator's batch width)."""
        return self.evaluator.batch_size

    def run(
        self,
        circuit: Circuit,
        inputs: Mapping[str, Sequence[LweBatch]],
        outputs: Sequence[str] | None = None,
        schedule: LevelSchedule | None = None,
    ) -> Dict[str, List[LweBatch]]:
        """Execute ``circuit`` level-parallel over ``batch_size`` words.

        ``inputs`` maps input names to LSB-first lists of ``batch_size``-row
        bit planes (see :func:`repro.tfhe.circuits.encrypt_integers`).  Pass
        a precomputed ``schedule`` to amortise scheduling across runs.
        Results are bit-identical to :func:`execute` on the same inputs.
        """
        if schedule is None:
            schedule = schedule_circuit(circuit, outputs)
        elif schedule.circuit is not circuit:
            raise ValueError("schedule was built for a different circuit")
        elif outputs is not None and tuple(outputs) != schedule.output_names:
            raise ValueError(
                f"schedule was built for outputs {schedule.output_names}, "
                f"not {tuple(outputs)}; reschedule or drop the outputs argument"
            )
        words = self.batch_size
        live = circuit.live_nodes(schedule.output_names)
        for name in circuit.input_wires:
            for plane in inputs.get(name, ()):
                if plane.batch_size != words:
                    raise ValueError(
                        f"input {name!r} has batch width {plane.batch_size}, "
                        f"executor expects {words}"
                    )
        values = _gather_inputs(circuit, inputs, live)

        def resolve_linear(node_ids: Sequence[int]) -> None:
            for nid in node_ids:
                node = circuit.node(nid)
                if node.op == "input":
                    continue  # already gathered
                if node.op == "const":
                    values[nid] = self.evaluator.constant(node.value)
                elif node.op == "not":
                    values[nid] = self.evaluator.not_(values[node.args[0]])
                elif node.op == "copy":
                    values[nid] = self.evaluator.copy(values[node.args[0]])

        resolve_linear(schedule.linear[0])
        for level, wave in enumerate(schedule.waves, start=1):
            if wave:
                if any(circuit.node(n).op == "lut" for n in wave):
                    out = self._mixed_wave(circuit, wave, values, words)
                else:
                    names: List[str] = []
                    for nid in wave:
                        names.extend([circuit.node(nid).op] * words)
                    ca = lwe_batch_concat(values[circuit.node(n).args[0]] for n in wave)
                    cb = lwe_batch_concat(values[circuit.node(n).args[1]] for n in wave)
                    out = self.evaluator.gate_rows(names, ca, cb)
                self.level_calls += 1
                for i, nid in enumerate(wave):
                    values[nid] = out.rows(i * words, (i + 1) * words)
            resolve_linear(schedule.linear[level])
        return {
            name: [values[w] for w in circuit.output_wires[name]]
            for name in schedule.output_names
        }

    def _mixed_wave(
        self,
        circuit: Circuit,
        wave: Sequence[int],
        values: Dict[int, LweBatch],
        words: int,
    ) -> LweBatch:
        """Issue one wave mixing boolean gates and lut nodes as a single call.

        Every node contributes ``words`` rows: its affine combination plus
        its own test vector.  The whole wave then shares one fused blind
        rotation through
        :meth:`repro.tfhe.gates.BatchGateEvaluator.bootstrap_rows` — rows
        bootstrapping against the all-``mu`` gate vector sit next to rows
        bootstrapping against arbitrary lookup tables.
        """
        params = self.evaluator.context.params
        combined: List[LweBatch] = []
        vectors: List[np.ndarray] = []
        for nid in wave:
            node = circuit.node(nid)
            if node.op == "lut":
                spec = require_lut_spec(node.value, len(node.args))
                combined.append(
                    lut_affine_batch(spec, [values[a] for a in node.args])
                )
                vectors.append(lut_test_vector(params, spec))
            else:
                combined.append(
                    gate_affine_batch(
                        node.op, values[node.args[0]], values[node.args[1]]
                    )
                )
                vectors.append(self.evaluator.gate_test_vector())
        rows = lwe_batch_concat(combined)
        stack = np.concatenate(
            [np.broadcast_to(v, (words, params.N)) for v in vectors]
        )
        self.evaluator.counters.gates += rows.batch_size
        return self.evaluator.bootstrap_rows(rows, stack)

    def run_samples(
        self,
        circuit: Circuit,
        inputs: Mapping[str, Sequence[LweSample]],
        outputs: Sequence[str] | None = None,
        schedule: LevelSchedule | None = None,
    ) -> Dict[str, List[LweSample]]:
        """Single-word convenience: scalar bits in, scalar bits out.

        Requires ``batch_size == 1``; each sample is lifted to a one-row
        batch so the level packing still merges all gates of a level into
        one call — this is the pure level-parallelism mode (no word batch).
        """
        if self.batch_size != 1:
            raise ValueError("run_samples requires an executor of batch size 1")
        lifted = {
            name: [LweBatch.from_samples([bit]) for bit in bits]
            for name, bits in inputs.items()
        }
        planes = self.run(circuit, lifted, outputs, schedule)
        return {
            name: [plane[0] for plane in plane_list]
            for name, plane_list in planes.items()
        }

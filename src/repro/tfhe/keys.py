"""Key material: secret keys, bootstrapping keys and the cloud key set.

The client generates a :class:`TFHESecretKey` and derives from it a
:class:`TFHECloudKey` (bootstrapping key + key-switching key) which is shipped
to the server.  Since the runtime refactor the cloud key is *pure data*: it
holds the coefficient-domain TGSW samples of the bootstrapping key, the
key-switching key and a :class:`repro.tfhe.transform.TransformSpec` naming the
engine it was generated for — everything a server needs to rebuild the
evaluation state, and everything :mod:`repro.tfhe.serialize` writes to disk.

The *evaluation* state — the resolved transform engine and the blind rotator
whose TGSW rows are forward-transformed into the Lagrange domain — lives in a
:class:`repro.runtime.context.FheContext`.  The context transforms each
cloud-key row exactly once and caches the spectra, so gates never re-transform
key material.  The historical surface is preserved: ``cloud.blind_rotator``
and ``cloud.transform`` lazily build (and memoise) a default context, so code
written against the pre-runtime API keeps working bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.tfhe.keyswitch import KeySwitchKey, keyswitch_key_generate
from repro.tfhe.lwe import LweKey, lwe_key_generate
from repro.tfhe.params import TFHEParameters
from repro.tfhe.tgsw import TgswSample, TransformedTgswSample, tgsw_encrypt, tgsw_transform
from repro.tfhe.tlwe import TlweKey, tlwe_extract_lwe_key, tlwe_key_generate
from repro.tfhe.transform import NegacyclicTransform, TransformSpec, make_transform
from repro.utils.rng import SeedLike, make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime builds on keys)
    from repro.runtime.context import FheContext


@dataclass
class TFHESecretKey:
    """The client-side key material."""

    params: TFHEParameters
    lwe_key: LweKey
    tlwe_key: TlweKey
    extracted_key: LweKey


@dataclass
class RawUnrolledGroup:
    """Coefficient-domain BKU key material of one group of secret-key bits.

    ``samples[pattern - 1]`` is the TGSW encryption of the indicator product
    of ``pattern`` (patterns are ``1 .. 2^size − 1``), still in the
    coefficient domain — the serializable counterpart of
    :class:`repro.core.bku.UnrolledKeyGroup`.
    """

    indices: List[int]
    samples: List[TgswSample]

    @property
    def size(self) -> int:
        return len(self.indices)

    @property
    def pattern_count(self) -> int:
        return (1 << self.size) - 1


@dataclass
class TFHECloudKey:
    """The server-side (public) evaluation key material — pure data.

    Exactly one of ``bootstrapping_key`` (classical, ``unroll_factor == 1``)
    and ``unrolled_groups`` (BKU, ``unroll_factor >= 2``) is populated.
    ``transform_spec`` records the engine the key was generated for (``None``
    for ad-hoc engines, e.g. test proxies — such keys still evaluate through
    the attached engine instance but cannot be serialized).

    ``blind_rotator`` / ``transform`` are back-compat accessors that lazily
    build a default :class:`repro.runtime.context.FheContext` around this key;
    the context pre-transforms every bootstrapping-key row into the Lagrange
    domain exactly once (the spectrum cache) and memoises the rotator.
    """

    params: TFHEParameters
    keyswitch_key: KeySwitchKey
    unroll_factor: int
    transform_spec: Optional[TransformSpec]
    bootstrapping_key: Optional[List[TgswSample]] = None
    unrolled_groups: Optional[List[RawUnrolledGroup]] = None
    #: Engine instance the key was generated with (kept so the default
    #: context reuses it — same counters, bit-identical behaviour); rebuilt
    #: from ``transform_spec`` after deserialization.
    _engine: Optional[NegacyclicTransform] = field(
        default=None, repr=False, compare=False
    )
    _context: Optional["FheContext"] = field(default=None, repr=False, compare=False)

    def default_context(self) -> "FheContext":
        """The memoised default evaluation context of this key."""
        if self._context is None:
            from repro.runtime.context import FheContext

            self._context = FheContext(self, engine=self._engine)
        return self._context

    @property
    def blind_rotator(self):
        """The default context's blind rotator (spectrum-cached key rows)."""
        return self.default_context().rotator

    @property
    def transform(self) -> NegacyclicTransform:
        """The default context's transform engine."""
        return self.default_context().engine

    @property
    def tgsw_sample_count(self) -> int:
        """Number of TGSW ciphertexts in the bootstrapping key material."""
        if self.bootstrapping_key is not None:
            return len(self.bootstrapping_key)
        if self.unrolled_groups is not None:
            return sum(group.pattern_count for group in self.unrolled_groups)
        return 0


def generate_secret_key(
    params: TFHEParameters, rng: SeedLike = None
) -> TFHESecretKey:
    """Generate the LWE and ring keys of a client."""
    rng = make_rng(rng)
    lwe_key = lwe_key_generate(params.lwe, rng)
    tlwe_key = tlwe_key_generate(params.tlwe, rng)
    extracted = tlwe_extract_lwe_key(tlwe_key)
    return TFHESecretKey(
        params=params, lwe_key=lwe_key, tlwe_key=tlwe_key, extracted_key=extracted
    )


def generate_bootstrapping_key_material(
    secret: TFHESecretKey,
    transform: NegacyclicTransform,
    rng: SeedLike = None,
) -> List[TgswSample]:
    """The classical bootstrapping key, coefficient domain: one TGSW per key bit."""
    rng = make_rng(rng)
    params = secret.params
    key_bits = secret.lwe_key.key
    return [
        tgsw_encrypt(
            secret.tlwe_key,
            int(key_bits[i]),
            params.tgsw,
            transform,
            noise_stddev=params.tlwe.noise_stddev,
            rng=rng,
        )
        for i in range(params.n)
    ]


def generate_standard_bootstrapping_key(
    secret: TFHESecretKey,
    transform: NegacyclicTransform,
    rng: SeedLike = None,
) -> List[TransformedTgswSample]:
    """The classical bootstrapping key, pre-transformed (historical surface)."""
    return [
        tgsw_transform(sample, transform)
        for sample in generate_bootstrapping_key_material(secret, transform, rng)
    ]


def generate_cloud_key(
    secret: TFHESecretKey,
    transform: Optional[NegacyclicTransform] = None,
    unroll_factor: int = 1,
    rng: SeedLike = None,
    eager: bool = True,
) -> TFHECloudKey:
    """Derive the server-side evaluation key from a secret key.

    ``unroll_factor`` selects the blind-rotation strategy: ``1`` generates the
    classical per-bit key, ``m >= 2`` the BKU key material of
    :mod:`repro.core.bku` with ``2^m − 1`` TGSW samples per group of ``m``
    LWE key bits.  With ``eager=True`` (the default) the key's default
    evaluation context is built immediately — the bootstrapping-key spectra
    are transformed here, at key-generation time, exactly as the historical
    code did; pass ``eager=False`` to defer the spectrum cache to first use
    (what :func:`repro.tfhe.serialize.load_cloud_key` does).
    """
    rng = make_rng(rng)
    params = secret.params
    if transform is None:
        transform = make_transform("double", params.N)
    if unroll_factor < 1:
        raise ValueError("unroll factor must be >= 1")

    if unroll_factor == 1:
        bootstrapping_key = generate_bootstrapping_key_material(secret, transform, rng)
        unrolled_groups = None
    else:
        # Imported lazily: repro.core builds on repro.tfhe, not the reverse.
        from repro.core.bku import generate_unrolled_key_material

        unrolled_groups = generate_unrolled_key_material(
            secret, transform, unroll_factor, rng
        )
        bootstrapping_key = None

    keyswitch_key = keyswitch_key_generate(
        secret.extracted_key, secret.lwe_key, params.keyswitch, rng
    )
    cloud = TFHECloudKey(
        params=params,
        keyswitch_key=keyswitch_key,
        unroll_factor=unroll_factor,
        transform_spec=transform.spec(),
        bootstrapping_key=bootstrapping_key,
        unrolled_groups=unrolled_groups,
        _engine=transform,
    )
    if eager:
        cloud.default_context().rotator  # build the spectrum cache now
    return cloud


def generate_keys(
    params: TFHEParameters,
    transform: Optional[NegacyclicTransform] = None,
    unroll_factor: int = 1,
    rng: SeedLike = None,
    eager: bool = True,
) -> tuple[TFHESecretKey, TFHECloudKey]:
    """Generate a matching (secret key, cloud key) pair in one call.

    ``eager=False`` skips building the spectrum cache — right for callers
    that only serialize the key (the loading context rebuilds the cache).
    """
    rng = make_rng(rng)
    secret = generate_secret_key(params, rng)
    cloud = generate_cloud_key(secret, transform, unroll_factor, rng, eager=eager)
    return secret, cloud

"""Key material: secret keys, bootstrapping keys and the cloud key set.

The client generates a :class:`TFHESecretKey` and derives from it a
:class:`TFHECloudKey` (bootstrapping key + key-switching key) which is shipped
to the server.  The cloud key also fixes the *evaluation backend*: the
polynomial-multiplication engine (double-precision FFT, approximate integer
FFT, or exact) and the blind-rotation strategy (classical CMux or unrolled
BKU with a chosen ``m``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.tfhe.bootstrap import BlindRotator, CmuxBlindRotator
from repro.tfhe.keyswitch import KeySwitchKey, keyswitch_key_generate
from repro.tfhe.lwe import LweKey, lwe_key_generate
from repro.tfhe.params import TFHEParameters
from repro.tfhe.tgsw import TransformedTgswSample, tgsw_encrypt, tgsw_transform
from repro.tfhe.tlwe import TlweKey, tlwe_extract_lwe_key, tlwe_key_generate
from repro.tfhe.transform import NegacyclicTransform, make_transform
from repro.utils.rng import SeedLike, make_rng


@dataclass
class TFHESecretKey:
    """The client-side key material."""

    params: TFHEParameters
    lwe_key: LweKey
    tlwe_key: TlweKey
    extracted_key: LweKey


@dataclass
class TFHECloudKey:
    """The server-side (public) evaluation key material.

    ``blind_rotator`` encapsulates the bootstrapping key together with the
    blind-rotation strategy; ``unroll_factor`` records the BKU factor ``m``
    it was built for (1 = classical).
    """

    params: TFHEParameters
    blind_rotator: BlindRotator
    keyswitch_key: KeySwitchKey
    transform: NegacyclicTransform
    unroll_factor: int


def generate_secret_key(
    params: TFHEParameters, rng: SeedLike = None
) -> TFHESecretKey:
    """Generate the LWE and ring keys of a client."""
    rng = make_rng(rng)
    lwe_key = lwe_key_generate(params.lwe, rng)
    tlwe_key = tlwe_key_generate(params.tlwe, rng)
    extracted = tlwe_extract_lwe_key(tlwe_key)
    return TFHESecretKey(
        params=params, lwe_key=lwe_key, tlwe_key=tlwe_key, extracted_key=extracted
    )


def generate_standard_bootstrapping_key(
    secret: TFHESecretKey,
    transform: NegacyclicTransform,
    rng: SeedLike = None,
) -> List[TransformedTgswSample]:
    """The classical bootstrapping key: one TGSW encryption of each LWE key bit."""
    rng = make_rng(rng)
    params = secret.params
    key_bits = secret.lwe_key.key
    bootstrapping_key = []
    for i in range(params.n):
        sample = tgsw_encrypt(
            secret.tlwe_key,
            int(key_bits[i]),
            params.tgsw,
            transform,
            noise_stddev=params.tlwe.noise_stddev,
            rng=rng,
        )
        bootstrapping_key.append(tgsw_transform(sample, transform))
    return bootstrapping_key


def generate_cloud_key(
    secret: TFHESecretKey,
    transform: Optional[NegacyclicTransform] = None,
    unroll_factor: int = 1,
    rng: SeedLike = None,
) -> TFHECloudKey:
    """Derive the server-side evaluation key from a secret key.

    ``unroll_factor`` selects the blind-rotation strategy: ``1`` builds the
    classical CMux rotator, ``m >= 2`` builds the BKU rotator of
    :mod:`repro.core.bku` with ``2^m − 1`` TGSW keys per group of ``m`` LWE
    key bits.
    """
    rng = make_rng(rng)
    params = secret.params
    if transform is None:
        transform = make_transform("double", params.N)
    if unroll_factor < 1:
        raise ValueError("unroll factor must be >= 1")

    if unroll_factor == 1:
        bootstrapping_key = generate_standard_bootstrapping_key(secret, transform, rng)
        rotator: BlindRotator = CmuxBlindRotator(bootstrapping_key, transform)
    else:
        # Imported lazily: repro.core builds on repro.tfhe, not the reverse.
        from repro.core.bku import UnrolledBlindRotator, generate_unrolled_bootstrapping_key

        unrolled_key = generate_unrolled_bootstrapping_key(
            secret, transform, unroll_factor, rng
        )
        rotator = UnrolledBlindRotator(unrolled_key, transform)

    keyswitch_key = keyswitch_key_generate(
        secret.extracted_key, secret.lwe_key, params.keyswitch, rng
    )
    return TFHECloudKey(
        params=params,
        blind_rotator=rotator,
        keyswitch_key=keyswitch_key,
        transform=transform,
        unroll_factor=unroll_factor,
    )


def generate_keys(
    params: TFHEParameters,
    transform: Optional[NegacyclicTransform] = None,
    unroll_factor: int = 1,
    rng: SeedLike = None,
) -> tuple[TFHESecretKey, TFHECloudKey]:
    """Generate a matching (secret key, cloud key) pair in one call."""
    rng = make_rng(rng)
    secret = generate_secret_key(params, rng)
    cloud = generate_cloud_key(secret, transform, unroll_factor, rng)
    return secret, cloud

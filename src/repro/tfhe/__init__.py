"""TFHE cryptosystem substrate.

A from-scratch implementation of TFHE gate bootstrapping (Chillotti et al.,
Journal of Cryptology 2020) as described in Section 2 of the MATCHA paper:
torus arithmetic, LWE/TLWE/TGSW encryption, the external product, blind
rotation, sample extraction, key switching and the homomorphic Boolean gates.

The polynomial-multiplication engine is pluggable (see
:mod:`repro.tfhe.transform`); MATCHA's approximate multiplication-less integer
FFT lives in :mod:`repro.core.integer_fft` and plugs into the same interface.
"""

from repro.tfhe.params import (
    PAPER_110BIT,
    PARAMETER_SETS,
    TEST_MEDIUM,
    TEST_SMALL,
    TEST_TINY,
    TFHEParameters,
    get_parameters,
)
from repro.tfhe.keys import (
    TFHECloudKey,
    TFHESecretKey,
    generate_cloud_key,
    generate_keys,
    generate_secret_key,
)
from repro.tfhe.gates import (
    BatchGateEvaluator,
    TFHEGateEvaluator,
    decrypt_bit,
    decrypt_bit_batch,
    decrypt_bits,
    encrypt_bit,
    encrypt_bit_batch,
    encrypt_bits,
)
from repro.tfhe.lwe import LweBatch, LweSample
from repro.tfhe.netlist import (
    Circuit,
    absolute_netlist,
    adder_netlist,
    equal_netlist,
    greater_than_netlist,
    maximum_netlist,
    minimum_netlist,
    multiplier_netlist,
    negate_netlist,
    select_netlist,
    shift_left_netlist,
    shift_right_netlist,
    subtractor_netlist,
)
from repro.tfhe.executor import (
    CircuitExecutor,
    LevelSchedule,
    execute,
    schedule_circuit,
)
from repro.tfhe.serialize import (
    SerializationError,
    circuit_from_json,
    circuit_to_json,
    load,
    load_circuit,
    load_cloud_key,
    load_lwe_batch,
    load_lwe_sample,
    load_secret_key,
    save,
    save_circuit,
    save_cloud_key,
    save_lwe_batch,
    save_lwe_sample,
    save_secret_key,
)
from repro.tfhe.tlwe import TlweBatch, TlweSample
from repro.tfhe.transform import (
    DoubleFFTNegacyclicTransform,
    NaiveNegacyclicTransform,
    NegacyclicTransform,
    TransformSpec,
    available_engines,
    make_transform,
    register_engine,
)

__all__ = [
    "Circuit",
    "CircuitExecutor",
    "LevelSchedule",
    "absolute_netlist",
    "adder_netlist",
    "equal_netlist",
    "execute",
    "greater_than_netlist",
    "maximum_netlist",
    "minimum_netlist",
    "multiplier_netlist",
    "negate_netlist",
    "schedule_circuit",
    "select_netlist",
    "shift_left_netlist",
    "shift_right_netlist",
    "subtractor_netlist",
    "PAPER_110BIT",
    "PARAMETER_SETS",
    "TEST_MEDIUM",
    "TEST_SMALL",
    "TEST_TINY",
    "TFHEParameters",
    "get_parameters",
    "TFHECloudKey",
    "TFHESecretKey",
    "generate_cloud_key",
    "generate_keys",
    "generate_secret_key",
    "BatchGateEvaluator",
    "TFHEGateEvaluator",
    "LweBatch",
    "LweSample",
    "TlweBatch",
    "TlweSample",
    "decrypt_bit",
    "decrypt_bit_batch",
    "decrypt_bits",
    "encrypt_bit",
    "encrypt_bit_batch",
    "encrypt_bits",
    "DoubleFFTNegacyclicTransform",
    "NaiveNegacyclicTransform",
    "NegacyclicTransform",
    "TransformSpec",
    "available_engines",
    "make_transform",
    "register_engine",
    "SerializationError",
    "circuit_from_json",
    "circuit_to_json",
    "load",
    "load_circuit",
    "load_cloud_key",
    "load_lwe_batch",
    "load_lwe_sample",
    "load_secret_key",
    "save",
    "save_circuit",
    "save_cloud_key",
    "save_lwe_batch",
    "save_lwe_sample",
    "save_secret_key",
]

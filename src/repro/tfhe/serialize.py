"""Versioned on-disk serialization of keys and ciphertexts (npz format).

This is the client/server story of the runtime layer: a client generates a
keypair with :mod:`repro.tfhe.keys` (or ``tools/keygen.py``), ships the cloud
key to a server, and exchanges ciphertexts as files or byte streams.  Every
artifact is written as a NumPy ``.npz`` archive whose ``__meta__`` entry is a
JSON header::

    {"format": "repro-tfhe", "version": 1, "artifact": "cloud_key", ...}

Loaders reject unknown formats and mismatched versions with
:class:`SerializationError` before touching any array, so format evolution is
explicit.  Cloud keys serialize their *coefficient-domain* TGSW material plus
the :class:`repro.tfhe.transform.TransformSpec` of the engine they were
generated for; the Lagrange-domain spectrum cache is deliberately **not**
serialized — it is rebuilt (once) by the
:class:`repro.runtime.context.FheContext` that loads the key, which also
allows evaluating a loaded key under a different engine.

Five npz artifact kinds are supported: ``secret_key``, ``cloud_key``,
``lwe_sample``, ``lwe_batch`` and ``radix_int`` (a radix-decomposed integer
ciphertext: its digit rows plus the digit encoding and noise-bound metadata
needed to resume homomorphic evaluation).  :func:`save` / :func:`load`
dispatch on the object / header; the per-artifact functions are also public.
Array payloads are validated *strictly* on load — an entry with the wrong
dtype or rank is rejected rather than silently cast, so a corrupted or
hand-edited archive cannot smuggle garbage into a ciphertext.

Compiled circuits travel as *JSON text* rather than npz — a netlist is pure
structure (no arrays) and a human-diffable artifact is worth more than a
binary one for compiler output.  :func:`circuit_to_json` /
:func:`circuit_from_json` round-trip a :class:`repro.tfhe.netlist.Circuit`
under the same versioning discipline (``repro-tfhe-circuit`` format header,
version rejection, structural validation on load), so a client can trace and
optimize a program once and ship the artifact to the runtime exactly like
keys and ciphertexts; :func:`save_circuit` / :func:`load_circuit` are the
path-level helpers.
"""

from __future__ import annotations

import io
import json
import pathlib
from dataclasses import asdict
from typing import Any, BinaryIO, Dict, List, Union

import numpy as np

from repro.tfhe.integers import RadixInt
from repro.tfhe.keys import (
    RawUnrolledGroup,
    TFHECloudKey,
    TFHESecretKey,
)
from repro.tfhe.keyswitch import KeySwitchKey
from repro.tfhe.lwe import LweBatch, LweKey, LweSample
from repro.tfhe.netlist import Circuit, Node
from repro.tfhe.params import (
    DigitEncoding,
    KeySwitchParams,
    LweParams,
    TFHEParameters,
    TgswParams,
    TlweParams,
)
from repro.tfhe.tgsw import TgswSample
from repro.tfhe.tlwe import TlweKey, tlwe_extract_lwe_key
from repro.tfhe.transform import TransformSpec

#: Magic string identifying the archive family.
FORMAT = "repro-tfhe"
#: Current on-disk format version; loaders reject any other version.
#: Version 2 added the ``radix_int`` artifact (digit ciphertexts with
#: encoding/bound metadata) and made array dtype validation strict.
FORMAT_VERSION = 2

PathLike = Union[str, pathlib.Path, BinaryIO]


class SerializationError(ValueError):
    """Raised for malformed archives, version mismatches or unserializable keys."""


# --------------------------------------------------------------------------- #
# parameter (de)serialization                                                 #
# --------------------------------------------------------------------------- #


def _params_to_dict(params: TFHEParameters) -> Dict[str, Any]:
    return asdict(params)


def _params_from_dict(payload: Dict[str, Any]) -> TFHEParameters:
    return TFHEParameters(
        name=payload["name"],
        security_bits=int(payload["security_bits"]),
        lwe=LweParams(**payload["lwe"]),
        tlwe=TlweParams(**payload["tlwe"]),
        tgsw=TgswParams(**payload["tgsw"]),
        keyswitch=KeySwitchParams(**payload["keyswitch"]),
        message_space=int(payload.get("message_space", 8)),
    )


# --------------------------------------------------------------------------- #
# archive plumbing                                                            #
# --------------------------------------------------------------------------- #


def _write_archive(path: PathLike, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> None:
    header = {"format": FORMAT, "version": FORMAT_VERSION, **meta}
    payload = {"__meta__": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)}
    payload.update(arrays)
    if isinstance(path, (str, pathlib.Path)):
        # Write exactly the requested name (np.savez appends ".npz" to bare
        # string paths, which would break a later load by the same name).
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
    else:
        np.savez(path, **payload)


def _read_archive(path: PathLike, expected_artifact: str | None = None):
    """Read and validate an archive, returning ``(meta, arrays)``.

    Every array is materialized and the underlying NpzFile is closed before
    returning, so no file handle outlives the call.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except Exception as exc:  # zipfile/ValueError: not an npz at all
        raise SerializationError(f"not a readable npz archive: {exc}") from exc
    try:
        if "__meta__" not in archive.files:
            raise SerializationError("archive has no __meta__ header")
        try:
            meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"malformed __meta__ header: {exc}") from exc
        if meta.get("format") != FORMAT:
            raise SerializationError(
                f"unknown archive format {meta.get('format')!r} (expected {FORMAT!r})"
            )
        if meta.get("version") != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {meta.get('version')!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        if expected_artifact is not None and meta.get("artifact") != expected_artifact:
            raise SerializationError(
                f"archive holds a {meta.get('artifact')!r}, "
                f"expected {expected_artifact!r}"
            )
        arrays = {name: archive[name] for name in archive.files if name != "__meta__"}
    finally:
        archive.close()
    return meta, arrays


def _require(arrays: Dict[str, np.ndarray], name: str) -> np.ndarray:
    try:
        return arrays[name]
    except KeyError:
        raise SerializationError(f"archive is missing the {name!r} entry") from None


def _require_i32(
    arrays: Dict[str, np.ndarray], name: str, ndim: int | None = None
) -> np.ndarray:
    """A required entry that must already *be* int32 of the expected rank.

    Every writer in this module stores int32; a float or int64 entry can only
    come from corruption or tampering, so it is rejected rather than cast —
    an ``astype`` here would silently truncate torus values.
    """
    array = _require(arrays, name)
    if array.dtype != np.int32:
        raise SerializationError(
            f"archive entry {name!r} has dtype {array.dtype}, expected int32"
        )
    if ndim is not None and array.ndim != ndim:
        raise SerializationError(
            f"archive entry {name!r} has rank {array.ndim}, expected {ndim}"
        )
    return array


# --------------------------------------------------------------------------- #
# secret keys                                                                 #
# --------------------------------------------------------------------------- #


def save_secret_key(path: PathLike, secret: TFHESecretKey) -> None:
    """Write a client secret key (LWE + ring key bits; extracted key is derived)."""
    _write_archive(
        path,
        {"artifact": "secret_key", "params": _params_to_dict(secret.params)},
        {
            "lwe_key": secret.lwe_key.key.astype(np.int32),
            "tlwe_key": secret.tlwe_key.key.astype(np.int32),
        },
    )


def _secret_key_from_archive(meta, arrays) -> TFHESecretKey:
    params = _params_from_dict(meta["params"])
    lwe_key = LweKey(params=params.lwe, key=_require_i32(arrays, "lwe_key", ndim=1))
    tlwe_key = TlweKey(
        params=params.tlwe, key=_require_i32(arrays, "tlwe_key", ndim=2)
    )
    return TFHESecretKey(
        params=params,
        lwe_key=lwe_key,
        tlwe_key=tlwe_key,
        extracted_key=tlwe_extract_lwe_key(tlwe_key),
    )


def load_secret_key(path: PathLike) -> TFHESecretKey:
    """Read a secret key; the extracted ring-LWE key is re-derived on load."""
    return _secret_key_from_archive(*_read_archive(path, "secret_key"))


# --------------------------------------------------------------------------- #
# cloud keys                                                                  #
# --------------------------------------------------------------------------- #


def save_cloud_key(path: PathLike, cloud: TFHECloudKey) -> None:
    """Write a cloud key: coefficient-domain TGSW material + transform spec.

    Keys generated with an unregistered ad-hoc engine (``transform_spec`` is
    ``None``) cannot be rebuilt elsewhere and are rejected.
    """
    if cloud.transform_spec is None:
        raise SerializationError(
            "cloud key was generated with an unregistered engine and cannot "
            "be serialized; regenerate it with a registry engine "
            "(see repro.tfhe.transform.available_engines)"
        )
    meta: Dict[str, Any] = {
        "artifact": "cloud_key",
        "params": _params_to_dict(cloud.params),
        "unroll_factor": cloud.unroll_factor,
        "transform": cloud.transform_spec.to_json(),
    }
    arrays: Dict[str, np.ndarray] = {
        "keyswitch": cloud.keyswitch_key.data.astype(np.int32)
    }
    if cloud.unroll_factor == 1:
        if cloud.bootstrapping_key is None:
            raise SerializationError("cloud key carries no bootstrapping key material")
        arrays["bootstrapping_key"] = np.stack(
            [sample.data for sample in cloud.bootstrapping_key]
        ).astype(np.int32)
    else:
        if cloud.unrolled_groups is None:
            raise SerializationError("cloud key carries no unrolled key material")
        # Group boundaries are deterministic (group_indices(n, m)), so the
        # flat sample stack plus the unroll factor fully describe the key.
        flat: List[np.ndarray] = []
        for group in cloud.unrolled_groups:
            flat.extend(sample.data for sample in group.samples)
        arrays["unrolled_key"] = np.stack(flat).astype(np.int32)
    _write_archive(path, meta, arrays)


def _cloud_key_from_archive(meta, arrays) -> TFHECloudKey:
    params = _params_from_dict(meta["params"])
    unroll_factor = int(meta["unroll_factor"])
    spec = TransformSpec.from_json(meta["transform"])
    ks_data = _require_i32(arrays, "keyswitch")
    keyswitch_key = KeySwitchKey(
        params=params.keyswitch,
        data=ks_data,
        input_dimension=int(ks_data.shape[0]),
        output_dimension=int(ks_data.shape[-1]) - 1,
    )
    bootstrapping_key = None
    unrolled_groups = None
    if unroll_factor == 1:
        stacked = _require_i32(arrays, "bootstrapping_key")
        if stacked.shape[0] != params.n:
            raise SerializationError(
                f"bootstrapping key holds {stacked.shape[0]} TGSW samples, "
                f"expected {params.n} for n={params.n}"
            )
        bootstrapping_key = [
            TgswSample(data=row, params=params.tgsw) for row in stacked
        ]
    else:
        from repro.core.bku import group_indices

        flat = _require_i32(arrays, "unrolled_key")
        groups = group_indices(params.n, unroll_factor)
        expected = sum((1 << len(indices)) - 1 for indices in groups)
        if flat.shape[0] != expected:
            raise SerializationError(
                f"unrolled key holds {flat.shape[0]} TGSW samples, "
                f"expected {expected} for n={params.n}, m={unroll_factor}"
            )
        unrolled_groups = []
        cursor = 0
        for indices in groups:
            count = (1 << len(indices)) - 1
            samples = [
                TgswSample(data=flat[cursor + j], params=params.tgsw)
                for j in range(count)
            ]
            cursor += count
            unrolled_groups.append(
                RawUnrolledGroup(indices=list(indices), samples=samples)
            )
    return TFHECloudKey(
        params=params,
        keyswitch_key=keyswitch_key,
        unroll_factor=unroll_factor,
        transform_spec=spec,
        bootstrapping_key=bootstrapping_key,
        unrolled_groups=unrolled_groups,
    )


def load_cloud_key(path: PathLike) -> TFHECloudKey:
    """Read a cloud key.  The spectrum cache is rebuilt lazily on first use."""
    return _cloud_key_from_archive(*_read_archive(path, "cloud_key"))


# --------------------------------------------------------------------------- #
# ciphertexts                                                                 #
# --------------------------------------------------------------------------- #


def save_lwe_sample(path: PathLike, sample: LweSample) -> None:
    """Write a single LWE ciphertext."""
    _write_archive(
        path,
        {"artifact": "lwe_sample"},
        {"a": sample.a.astype(np.int32), "b": np.asarray(sample.b, dtype=np.int32)},
    )


def _lwe_sample_from_archive(_meta, arrays) -> LweSample:
    b = _require_i32(arrays, "b")
    if b.ndim != 0:
        raise SerializationError(
            f"archive entry 'b' has rank {b.ndim}, expected a scalar"
        )
    return LweSample(a=_require_i32(arrays, "a", ndim=1), b=np.int32(b))


def load_lwe_sample(path: PathLike) -> LweSample:
    """Read a single LWE ciphertext."""
    return _lwe_sample_from_archive(*_read_archive(path, "lwe_sample"))


def save_lwe_batch(path: PathLike, batch: LweBatch) -> None:
    """Write a batch of LWE ciphertexts."""
    _write_archive(
        path,
        {"artifact": "lwe_batch"},
        {"a": batch.a.astype(np.int32), "b": batch.b.astype(np.int32)},
    )


def _lwe_batch_from_archive(_meta, arrays) -> LweBatch:
    return LweBatch(
        a=_require_i32(arrays, "a", ndim=2),
        b=_require_i32(arrays, "b", ndim=1),
    )


def load_lwe_batch(path: PathLike) -> LweBatch:
    """Read a batch of LWE ciphertexts."""
    return _lwe_batch_from_archive(*_read_archive(path, "lwe_batch"))


def save_radix_int(path: PathLike, value: RadixInt) -> None:
    """Write a radix-decomposed integer ciphertext.

    The digit rows are stacked like an LWE batch; the header carries the
    digit encoding and the per-digit noise-growth bounds, both of which the
    server side needs to keep scheduling carry propagation correctly.
    """
    _write_archive(
        path,
        {
            "artifact": "radix_int",
            "encoding": {
                "message_bits": value.encoding.message_bits,
                "carry_bits": value.encoding.carry_bits,
            },
            "bounds": list(value.bounds),
        },
        {
            "a": np.stack([digit.a for digit in value.digits]).astype(np.int32),
            "b": np.array([digit.b for digit in value.digits], dtype=np.int32),
        },
    )


def _radix_int_from_archive(meta, arrays) -> RadixInt:
    a = _require_i32(arrays, "a", ndim=2)
    b = _require_i32(arrays, "b", ndim=1)
    if a.shape[0] != b.shape[0]:
        raise SerializationError(
            f"radix digit arrays disagree: {a.shape[0]} 'a' rows vs "
            f"{b.shape[0]} 'b' entries"
        )
    try:
        encoding = DigitEncoding(
            message_bits=int(meta["encoding"]["message_bits"]),
            carry_bits=int(meta["encoding"]["carry_bits"]),
        )
        bounds = tuple(int(bound) for bound in meta["bounds"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed radix metadata: {exc}") from exc
    digits = [
        LweSample(a=a[i].copy(), b=np.int32(b[i])) for i in range(a.shape[0])
    ]
    try:
        return RadixInt(digits=digits, bounds=bounds, encoding=encoding)
    except ValueError as exc:
        raise SerializationError(f"inconsistent radix ciphertext: {exc}") from exc


def load_radix_int(path: PathLike) -> RadixInt:
    """Read a radix-decomposed integer ciphertext."""
    return _radix_int_from_archive(*_read_archive(path, "radix_int"))


# --------------------------------------------------------------------------- #
# dispatching save/load                                                       #
# --------------------------------------------------------------------------- #

_SAVERS = (
    (TFHESecretKey, save_secret_key),
    (TFHECloudKey, save_cloud_key),
    (LweBatch, save_lwe_batch),
    (LweSample, save_lwe_sample),
    (RadixInt, save_radix_int),
)

_LOADERS = {
    "secret_key": _secret_key_from_archive,
    "cloud_key": _cloud_key_from_archive,
    "lwe_sample": _lwe_sample_from_archive,
    "lwe_batch": _lwe_batch_from_archive,
    "radix_int": _radix_int_from_archive,
}


def save(path: PathLike, obj) -> None:
    """Write any supported artifact, dispatching on its type."""
    for cls, saver in _SAVERS:
        if isinstance(obj, cls):
            saver(path, obj)
            return
    raise SerializationError(f"cannot serialize objects of type {type(obj).__name__}")


def load(path: PathLike):
    """Read any supported artifact, dispatching on the archive header."""
    meta, arrays = _read_archive(path)
    artifact = meta.get("artifact")
    if artifact not in _LOADERS:
        raise SerializationError(f"unknown artifact kind {artifact!r}")
    return _LOADERS[artifact](meta, arrays)


def to_bytes(obj) -> bytes:
    """Serialize any supported artifact to an in-memory byte string."""
    buffer = io.BytesIO()
    save(buffer, obj)
    return buffer.getvalue()


def from_bytes(data: bytes):
    """Deserialize an artifact previously produced by :func:`to_bytes`."""
    return load(io.BytesIO(data))


# --------------------------------------------------------------------------- #
# circuit netlists (JSON)                                                     #
# --------------------------------------------------------------------------- #

#: Magic string of the circuit JSON family (distinct from the npz family so a
#: circuit file can never be mistaken for a key archive and vice versa).
CIRCUIT_FORMAT = "repro-tfhe-circuit"
#: Current circuit format version; :func:`circuit_from_json` rejects others.
#: Version 2 added ``lut`` nodes, which carry both ``args`` (the inputs, LSB
#: of the table index first) and ``value`` (the truth table).
CIRCUIT_FORMAT_VERSION = 2


def circuit_to_json(circuit: Circuit, indent: int | None = None) -> str:
    """Serialize a validated netlist to versioned JSON text.

    Nodes are emitted in SSA order with only their meaningful fields (gate
    nodes carry ``args``, constants carry ``value``, inputs carry
    ``name``/``bit``), so the artifact stays compact and diffable.
    """
    circuit.validate()
    nodes: List[Dict[str, Any]] = []
    for node in circuit.nodes:
        entry: Dict[str, Any] = {"op": node.op}
        if node.op == "input":
            entry["name"] = node.name
            entry["bit"] = node.bit
        elif node.op == "const":
            entry["value"] = node.value
        elif node.op == "lut":
            entry["args"] = list(node.args)
            entry["value"] = node.value  # the truth table
        else:
            entry["args"] = list(node.args)
        nodes.append(entry)
    payload = {
        "format": CIRCUIT_FORMAT,
        "version": CIRCUIT_FORMAT_VERSION,
        "name": circuit.name,
        "nodes": nodes,
        "inputs": {name: list(wires) for name, wires in circuit.input_wires.items()},
        "outputs": {name: list(wires) for name, wires in circuit.output_wires.items()},
    }
    return json.dumps(payload, indent=indent)


def circuit_from_json(text: Union[str, bytes]) -> Circuit:
    """Rebuild a netlist from :func:`circuit_to_json` output.

    Rejects unknown formats and versions before touching the node list, then
    re-validates the full structure (known ops, arities, SSA order, input
    words consistent with their ``input`` nodes, output wires in range), so a
    tampered or truncated artifact can never produce a circuit the executors
    would mis-evaluate.
    """
    try:
        payload = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SerializationError(f"not a readable circuit JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError("circuit JSON must be an object")
    if payload.get("format") != CIRCUIT_FORMAT:
        raise SerializationError(
            f"unknown circuit format {payload.get('format')!r} "
            f"(expected {CIRCUIT_FORMAT!r})"
        )
    if payload.get("version") != CIRCUIT_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported circuit format version {payload.get('version')!r} "
            f"(this build reads version {CIRCUIT_FORMAT_VERSION})"
        )
    for key in ("nodes", "inputs", "outputs"):
        if not isinstance(payload.get(key), (list, dict)):
            raise SerializationError(f"circuit JSON is missing the {key!r} entry")

    circuit = Circuit(str(payload.get("name", "circuit")))
    try:
        for node_id, entry in enumerate(payload["nodes"]):
            op = entry["op"]
            circuit.nodes.append(
                Node(
                    node_id=node_id,
                    op=op,
                    args=tuple(int(a) for a in entry.get("args", ())),
                    value=int(entry.get("value", 0)),
                    name=str(entry.get("name", "")),
                    bit=int(entry.get("bit", -1)),
                )
            )
        circuit.input_wires = {
            str(name): tuple(int(w) for w in wires)
            for name, wires in payload["inputs"].items()
        }
        circuit.output_wires = {
            str(name): tuple(int(w) for w in wires)
            for name, wires in payload["outputs"].items()
        }
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SerializationError(f"malformed circuit JSON: {exc}") from exc

    try:
        circuit.validate()
    except ValueError as exc:
        raise SerializationError(f"invalid circuit structure: {exc}") from exc
    node_count = len(circuit.nodes)
    for name, wires in circuit.input_wires.items():
        if not wires:
            raise SerializationError(f"input word {name!r} has no wires")
        for position, wire in enumerate(wires):
            if not 0 <= wire < node_count:
                raise SerializationError(f"input word {name!r} references wire {wire}")
            node = circuit.nodes[wire]
            if node.op != "input" or node.name != name or node.bit != position:
                raise SerializationError(
                    f"input word {name!r} bit {position} does not match its node"
                )
    declared = {w for wires in circuit.input_wires.values() for w in wires}
    for node in circuit.nodes:
        if node.op == "input" and node.node_id not in declared:
            raise SerializationError(
                f"input node {node.node_id} is not part of any declared word"
            )
    for name, wires in circuit.output_wires.items():
        if not wires:
            raise SerializationError(f"output word {name!r} has no wires")
        for wire in wires:
            if not 0 <= wire < node_count:
                raise SerializationError(
                    f"output word {name!r} references wire {wire}"
                )
    return circuit


def save_circuit(path: Union[str, pathlib.Path], circuit: Circuit) -> None:
    """Write a netlist as a versioned JSON file (pretty-printed for diffing)."""
    pathlib.Path(path).write_text(circuit_to_json(circuit, indent=2) + "\n")


def load_circuit(path: Union[str, pathlib.Path]) -> Circuit:
    """Read a netlist written by :func:`save_circuit`."""
    return circuit_from_json(pathlib.Path(path).read_text())

"""Versioned on-disk serialization of keys and ciphertexts (npz format).

This is the client/server story of the runtime layer: a client generates a
keypair with :mod:`repro.tfhe.keys` (or ``tools/keygen.py``), ships the cloud
key to a server, and exchanges ciphertexts as files or byte streams.  Every
artifact is written as a NumPy ``.npz`` archive whose ``__meta__`` entry is a
JSON header::

    {"format": "repro-tfhe", "version": 1, "artifact": "cloud_key", ...}

Loaders reject unknown formats and mismatched versions with
:class:`SerializationError` before touching any array, so format evolution is
explicit.  Cloud keys serialize their *coefficient-domain* TGSW material plus
the :class:`repro.tfhe.transform.TransformSpec` of the engine they were
generated for; the Lagrange-domain spectrum cache is deliberately **not**
serialized — it is rebuilt (once) by the
:class:`repro.runtime.context.FheContext` that loads the key, which also
allows evaluating a loaded key under a different engine.

Four artifact kinds are supported: ``secret_key``, ``cloud_key``,
``lwe_sample`` and ``lwe_batch``.  :func:`save` / :func:`load` dispatch on
the object / header; the per-artifact functions are also public.
"""

from __future__ import annotations

import io
import json
import pathlib
from dataclasses import asdict
from typing import Any, BinaryIO, Dict, List, Union

import numpy as np

from repro.tfhe.keys import (
    RawUnrolledGroup,
    TFHECloudKey,
    TFHESecretKey,
)
from repro.tfhe.keyswitch import KeySwitchKey
from repro.tfhe.lwe import LweBatch, LweKey, LweSample
from repro.tfhe.params import (
    KeySwitchParams,
    LweParams,
    TFHEParameters,
    TgswParams,
    TlweParams,
)
from repro.tfhe.tgsw import TgswSample
from repro.tfhe.tlwe import TlweKey, tlwe_extract_lwe_key
from repro.tfhe.transform import TransformSpec

#: Magic string identifying the archive family.
FORMAT = "repro-tfhe"
#: Current on-disk format version; loaders reject any other version.
FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path, BinaryIO]


class SerializationError(ValueError):
    """Raised for malformed archives, version mismatches or unserializable keys."""


# --------------------------------------------------------------------------- #
# parameter (de)serialization                                                 #
# --------------------------------------------------------------------------- #


def _params_to_dict(params: TFHEParameters) -> Dict[str, Any]:
    return asdict(params)


def _params_from_dict(payload: Dict[str, Any]) -> TFHEParameters:
    return TFHEParameters(
        name=payload["name"],
        security_bits=int(payload["security_bits"]),
        lwe=LweParams(**payload["lwe"]),
        tlwe=TlweParams(**payload["tlwe"]),
        tgsw=TgswParams(**payload["tgsw"]),
        keyswitch=KeySwitchParams(**payload["keyswitch"]),
        message_space=int(payload.get("message_space", 8)),
    )


# --------------------------------------------------------------------------- #
# archive plumbing                                                            #
# --------------------------------------------------------------------------- #


def _write_archive(path: PathLike, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> None:
    header = {"format": FORMAT, "version": FORMAT_VERSION, **meta}
    payload = {"__meta__": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)}
    payload.update(arrays)
    if isinstance(path, (str, pathlib.Path)):
        # Write exactly the requested name (np.savez appends ".npz" to bare
        # string paths, which would break a later load by the same name).
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
    else:
        np.savez(path, **payload)


def _read_archive(path: PathLike, expected_artifact: str | None = None):
    """Read and validate an archive, returning ``(meta, arrays)``.

    Every array is materialized and the underlying NpzFile is closed before
    returning, so no file handle outlives the call.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except Exception as exc:  # zipfile/ValueError: not an npz at all
        raise SerializationError(f"not a readable npz archive: {exc}") from exc
    try:
        if "__meta__" not in archive.files:
            raise SerializationError("archive has no __meta__ header")
        try:
            meta = json.loads(bytes(archive["__meta__"].tobytes()).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"malformed __meta__ header: {exc}") from exc
        if meta.get("format") != FORMAT:
            raise SerializationError(
                f"unknown archive format {meta.get('format')!r} (expected {FORMAT!r})"
            )
        if meta.get("version") != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {meta.get('version')!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        if expected_artifact is not None and meta.get("artifact") != expected_artifact:
            raise SerializationError(
                f"archive holds a {meta.get('artifact')!r}, "
                f"expected {expected_artifact!r}"
            )
        arrays = {name: archive[name] for name in archive.files if name != "__meta__"}
    finally:
        archive.close()
    return meta, arrays


def _require(arrays: Dict[str, np.ndarray], name: str) -> np.ndarray:
    try:
        return arrays[name]
    except KeyError:
        raise SerializationError(f"archive is missing the {name!r} entry") from None


# --------------------------------------------------------------------------- #
# secret keys                                                                 #
# --------------------------------------------------------------------------- #


def save_secret_key(path: PathLike, secret: TFHESecretKey) -> None:
    """Write a client secret key (LWE + ring key bits; extracted key is derived)."""
    _write_archive(
        path,
        {"artifact": "secret_key", "params": _params_to_dict(secret.params)},
        {
            "lwe_key": secret.lwe_key.key.astype(np.int32),
            "tlwe_key": secret.tlwe_key.key.astype(np.int32),
        },
    )


def _secret_key_from_archive(meta, arrays) -> TFHESecretKey:
    params = _params_from_dict(meta["params"])
    lwe_key = LweKey(params=params.lwe, key=_require(arrays, "lwe_key").astype(np.int32))
    tlwe_key = TlweKey(
        params=params.tlwe, key=_require(arrays, "tlwe_key").astype(np.int32)
    )
    return TFHESecretKey(
        params=params,
        lwe_key=lwe_key,
        tlwe_key=tlwe_key,
        extracted_key=tlwe_extract_lwe_key(tlwe_key),
    )


def load_secret_key(path: PathLike) -> TFHESecretKey:
    """Read a secret key; the extracted ring-LWE key is re-derived on load."""
    return _secret_key_from_archive(*_read_archive(path, "secret_key"))


# --------------------------------------------------------------------------- #
# cloud keys                                                                  #
# --------------------------------------------------------------------------- #


def save_cloud_key(path: PathLike, cloud: TFHECloudKey) -> None:
    """Write a cloud key: coefficient-domain TGSW material + transform spec.

    Keys generated with an unregistered ad-hoc engine (``transform_spec`` is
    ``None``) cannot be rebuilt elsewhere and are rejected.
    """
    if cloud.transform_spec is None:
        raise SerializationError(
            "cloud key was generated with an unregistered engine and cannot "
            "be serialized; regenerate it with a registry engine "
            "(see repro.tfhe.transform.available_engines)"
        )
    meta: Dict[str, Any] = {
        "artifact": "cloud_key",
        "params": _params_to_dict(cloud.params),
        "unroll_factor": cloud.unroll_factor,
        "transform": cloud.transform_spec.to_json(),
    }
    arrays: Dict[str, np.ndarray] = {
        "keyswitch": cloud.keyswitch_key.data.astype(np.int32)
    }
    if cloud.unroll_factor == 1:
        if cloud.bootstrapping_key is None:
            raise SerializationError("cloud key carries no bootstrapping key material")
        arrays["bootstrapping_key"] = np.stack(
            [sample.data for sample in cloud.bootstrapping_key]
        ).astype(np.int32)
    else:
        if cloud.unrolled_groups is None:
            raise SerializationError("cloud key carries no unrolled key material")
        # Group boundaries are deterministic (group_indices(n, m)), so the
        # flat sample stack plus the unroll factor fully describe the key.
        flat: List[np.ndarray] = []
        for group in cloud.unrolled_groups:
            flat.extend(sample.data for sample in group.samples)
        arrays["unrolled_key"] = np.stack(flat).astype(np.int32)
    _write_archive(path, meta, arrays)


def _cloud_key_from_archive(meta, arrays) -> TFHECloudKey:
    params = _params_from_dict(meta["params"])
    unroll_factor = int(meta["unroll_factor"])
    spec = TransformSpec.from_json(meta["transform"])
    ks_data = _require(arrays, "keyswitch").astype(np.int32)
    keyswitch_key = KeySwitchKey(
        params=params.keyswitch,
        data=ks_data,
        input_dimension=int(ks_data.shape[0]),
        output_dimension=int(ks_data.shape[-1]) - 1,
    )
    bootstrapping_key = None
    unrolled_groups = None
    if unroll_factor == 1:
        stacked = _require(arrays, "bootstrapping_key").astype(np.int32)
        if stacked.shape[0] != params.n:
            raise SerializationError(
                f"bootstrapping key holds {stacked.shape[0]} TGSW samples, "
                f"expected {params.n} for n={params.n}"
            )
        bootstrapping_key = [
            TgswSample(data=row, params=params.tgsw) for row in stacked
        ]
    else:
        from repro.core.bku import group_indices

        flat = _require(arrays, "unrolled_key").astype(np.int32)
        groups = group_indices(params.n, unroll_factor)
        expected = sum((1 << len(indices)) - 1 for indices in groups)
        if flat.shape[0] != expected:
            raise SerializationError(
                f"unrolled key holds {flat.shape[0]} TGSW samples, "
                f"expected {expected} for n={params.n}, m={unroll_factor}"
            )
        unrolled_groups = []
        cursor = 0
        for indices in groups:
            count = (1 << len(indices)) - 1
            samples = [
                TgswSample(data=flat[cursor + j], params=params.tgsw)
                for j in range(count)
            ]
            cursor += count
            unrolled_groups.append(
                RawUnrolledGroup(indices=list(indices), samples=samples)
            )
    return TFHECloudKey(
        params=params,
        keyswitch_key=keyswitch_key,
        unroll_factor=unroll_factor,
        transform_spec=spec,
        bootstrapping_key=bootstrapping_key,
        unrolled_groups=unrolled_groups,
    )


def load_cloud_key(path: PathLike) -> TFHECloudKey:
    """Read a cloud key.  The spectrum cache is rebuilt lazily on first use."""
    return _cloud_key_from_archive(*_read_archive(path, "cloud_key"))


# --------------------------------------------------------------------------- #
# ciphertexts                                                                 #
# --------------------------------------------------------------------------- #


def save_lwe_sample(path: PathLike, sample: LweSample) -> None:
    """Write a single LWE ciphertext."""
    _write_archive(
        path,
        {"artifact": "lwe_sample"},
        {"a": sample.a.astype(np.int32), "b": np.asarray(sample.b, dtype=np.int32)},
    )


def _lwe_sample_from_archive(_meta, arrays) -> LweSample:
    return LweSample(
        a=_require(arrays, "a").astype(np.int32), b=np.int32(_require(arrays, "b"))
    )


def load_lwe_sample(path: PathLike) -> LweSample:
    """Read a single LWE ciphertext."""
    return _lwe_sample_from_archive(*_read_archive(path, "lwe_sample"))


def save_lwe_batch(path: PathLike, batch: LweBatch) -> None:
    """Write a batch of LWE ciphertexts."""
    _write_archive(
        path,
        {"artifact": "lwe_batch"},
        {"a": batch.a.astype(np.int32), "b": batch.b.astype(np.int32)},
    )


def _lwe_batch_from_archive(_meta, arrays) -> LweBatch:
    return LweBatch(
        a=_require(arrays, "a").astype(np.int32),
        b=_require(arrays, "b").astype(np.int32),
    )


def load_lwe_batch(path: PathLike) -> LweBatch:
    """Read a batch of LWE ciphertexts."""
    return _lwe_batch_from_archive(*_read_archive(path, "lwe_batch"))


# --------------------------------------------------------------------------- #
# dispatching save/load                                                       #
# --------------------------------------------------------------------------- #

_SAVERS = (
    (TFHESecretKey, save_secret_key),
    (TFHECloudKey, save_cloud_key),
    (LweBatch, save_lwe_batch),
    (LweSample, save_lwe_sample),
)

_LOADERS = {
    "secret_key": _secret_key_from_archive,
    "cloud_key": _cloud_key_from_archive,
    "lwe_sample": _lwe_sample_from_archive,
    "lwe_batch": _lwe_batch_from_archive,
}


def save(path: PathLike, obj) -> None:
    """Write any supported artifact, dispatching on its type."""
    for cls, saver in _SAVERS:
        if isinstance(obj, cls):
            saver(path, obj)
            return
    raise SerializationError(f"cannot serialize objects of type {type(obj).__name__}")


def load(path: PathLike):
    """Read any supported artifact, dispatching on the archive header."""
    meta, arrays = _read_archive(path)
    artifact = meta.get("artifact")
    if artifact not in _LOADERS:
        raise SerializationError(f"unknown artifact kind {artifact!r}")
    return _LOADERS[artifact](meta, arrays)


def to_bytes(obj) -> bytes:
    """Serialize any supported artifact to an in-memory byte string."""
    buffer = io.BytesIO()
    save(buffer, obj)
    return buffer.getvalue()


def from_bytes(data: bytes):
    """Deserialize an artifact previously produced by :func:`to_bytes`."""
    return load(io.BytesIO(data))

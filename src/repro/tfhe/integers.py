"""Radix-decomposed encrypted integers over programmable bootstrapping.

A :class:`RadixInt` holds a little-endian vector of digit ciphertexts, each
encrypting a value in ``[0, P)`` under a :class:`~repro.tfhe.params.DigitEncoding`
with ``B = 2^message_bits`` and carry head-room ``P/B``.  Arithmetic follows
the standard radix recipe:

* **Linear ops are free.**  Addition, scalar addition and small scalings are
  digit-wise LWE additions — no bootstrapping — as long as the tracked
  plaintext *bounds* stay inside the carry budget.
* **Carry propagation is a lookup.**  Once a digit's bound approaches ``P``,
  one programmable bootstrap per digit splits it into ``v mod B`` (kept) and
  ``v div B`` (added to the next digit); both lookups ride one batched blind
  rotation per digit.
* **Multiplication packs digit pairs.**  ``p = B·x_i + y_j`` fits one digit
  when ``carry_bits >= message_bits``, so every partial-product low/high digit
  is a single LUT row and *all* of them share one batched blind rotation; the
  rows are then accumulated linearly in carry-budget-sized chunks.
* **Comparison is a sign lookup.**  Per-digit packed compares reduce ``x ? y``
  to trits ``{lt, eq, gt}`` folded most-significant-first through a tiny
  transition LUT.

Every public operation keeps the invariant that digit bounds never exceed
``max_accumulator_bound`` (``P − 1`` minus the largest possible incoming
carry), which is exactly the precondition :meth:`RadixEvaluator.propagate`
needs to renormalise without overflowing the torus slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.tfhe.bootstrap import context_programmable_bootstrap_batch
from repro.tfhe.gates import GateCounters
from repro.tfhe.lwe import (
    LweBatch,
    LweKey,
    LweSample,
    decrypt_digit,
    digit_message,
    encrypt_digit,
    lwe_add,
    lwe_add_constant,
    lwe_encrypt_trivial,
    lwe_scale,
)
from repro.tfhe.params import DigitEncoding


def radix_digits(value: int, width: int, encoding: DigitEncoding) -> List[int]:
    """Little-endian base-``B`` digits of ``value`` (reduced mod ``B^width``)."""
    base = encoding.base
    value %= base**width
    return [(value >> (i * encoding.message_bits)) & (base - 1) for i in range(width)]


def radix_value(digits: Sequence[int], encoding: DigitEncoding) -> int:
    """Recompose (possibly unnormalised) digits into an integer mod ``B^width``."""
    base = encoding.base
    total = 0
    for i, d in enumerate(digits):
        total += int(d) * base**i
    return total % base ** len(digits)


@dataclass
class RadixInt:
    """An encrypted unsigned integer: little-endian digit ciphertexts + bounds.

    ``bounds[i]`` is a public upper bound on the plaintext held by digit ``i``
    (fresh digits are bounded by ``B − 1``; linear ops grow the bound).  The
    ciphertext value is ``Σ digit_i · B^i mod B^width`` regardless of whether
    the digits are normalised.
    """

    digits: List[LweSample]
    bounds: Tuple[int, ...]
    encoding: DigitEncoding

    def __post_init__(self) -> None:
        if len(self.digits) != len(self.bounds):
            raise ValueError("one bound per digit required")
        if not self.digits:
            raise ValueError("RadixInt needs at least one digit")
        limit = self.encoding.space - 1
        if any(b < 0 or b > limit for b in self.bounds):
            raise ValueError(f"digit bounds must lie in [0, {limit}]")

    @property
    def width(self) -> int:
        """Number of digits (the integer is reduced mod ``B^width``)."""
        return len(self.digits)

    @property
    def is_normalized(self) -> bool:
        """Whether every digit is provably below the radix ``B``."""
        return all(b < self.encoding.base for b in self.bounds)

    def copy(self) -> "RadixInt":
        return RadixInt(
            digits=[d.copy() for d in self.digits],
            bounds=tuple(self.bounds),
            encoding=self.encoding,
        )


def encrypt_radix(
    key: LweKey,
    value: int,
    width: int,
    encoding: DigitEncoding,
    noise_stddev: Optional[float] = None,
    rng=None,
) -> RadixInt:
    """Encrypt ``value mod B^width`` as ``width`` fresh digit ciphertexts."""
    digits = [
        encrypt_digit(key, d, encoding, noise_stddev=noise_stddev, rng=rng)
        for d in radix_digits(value, width, encoding)
    ]
    return RadixInt(digits=digits, bounds=(encoding.base - 1,) * width, encoding=encoding)


def decrypt_radix(key: LweKey, x: RadixInt) -> int:
    """Decrypt a radix integer (digits need not be normalised)."""
    return radix_value(
        [decrypt_digit(key, d, x.encoding) for d in x.digits], x.encoding
    )


def trivial_radix(value: int, width: int, encoding: DigitEncoding, dimension: int) -> RadixInt:
    """A noiseless public constant in radix form (for accumulator seeds)."""
    digits = [
        lwe_encrypt_trivial(dimension, digit_message(d, encoding))
        for d in radix_digits(value, width, encoding)
    ]
    bounds = tuple(min(d, encoding.base - 1) for d in radix_digits(value, width, encoding))
    return RadixInt(digits=digits, bounds=bounds, encoding=encoding)


class RadixEvaluator:
    """Homomorphic integer arithmetic on :class:`RadixInt` values.

    Needs an evaluation context (:meth:`repro.runtime.context.FheContext`-style:
    ``rotator``, ``keyswitch_key``, ``params``) and the digit encoding shared by
    all operands.  Bootstraps are tallied in :attr:`counters` so benchmarks can
    compare against the boolean-circuit baseline.
    """

    def __init__(self, context, encoding: DigitEncoding) -> None:
        encoding.validate_for(context.params)
        self.context = context
        self.encoding = encoding
        self.counters = GateCounters()

    # -- encoding-derived budgets -------------------------------------------
    @property
    def max_accumulator_bound(self) -> int:
        """Largest digit bound from which carry propagation cannot overflow.

        During propagation digit ``i`` absorbs an incoming carry of at most
        ``⌊(P−1)/B⌋``, and the sum must stay below ``P``.
        """
        space = self.encoding.space
        return space - 1 - (space - 1) // self.encoding.base

    @property
    def _carry_room(self) -> int:
        return self.max_accumulator_bound - (self.encoding.base - 1)

    def _require_carry_room(self, operation: str) -> None:
        if self._carry_room <= 0:
            raise ValueError(
                f"{operation} needs carry head-room: encoding "
                f"{self.encoding.message_bits}+{self.encoding.carry_bits} bits "
                f"cannot hold a digit sum"
            )

    def _require_packing(self, operation: str) -> None:
        if self.encoding.carry_bits < self.encoding.message_bits:
            raise ValueError(
                f"{operation} packs digit pairs as B·x + y and needs "
                f"carry_bits >= message_bits (got "
                f"{self.encoding.carry_bits} < {self.encoding.message_bits})"
            )

    # -- bootstrap plumbing --------------------------------------------------
    def _pbs(self, samples: Sequence[LweSample], tables) -> List[LweSample]:
        """One fused batched blind rotation over ``len(samples)`` LUT rows."""
        batch = LweBatch.from_samples(samples)
        self.counters.bootstraps += batch.batch_size
        out = context_programmable_bootstrap_batch(
            self.context, batch, tables, self.encoding
        )
        return out.to_samples()

    def _split_tables(self) -> Tuple[List[int], List[int]]:
        base, space = self.encoding.base, self.encoding.space
        lo = [v % base for v in range(space)]
        hi = [v // base for v in range(space)]
        return lo, hi

    # -- carry propagation ---------------------------------------------------
    def propagate(self, x: RadixInt) -> RadixInt:
        """Renormalise all digits to ``[0, B)`` (value unchanged mod ``B^width``).

        Sequential in the carry chain; each unnormalised digit costs two LUT
        rows (``v mod B`` and ``v div B``) sharing one batched blind rotation.
        Digits already known to be below ``B`` with no incoming carry are
        passed through untouched.
        """
        limit = self.max_accumulator_bound
        if any(b > limit for b in x.bounds):
            raise ValueError(
                f"digit bounds {x.bounds} exceed the propagation budget {limit}"
            )
        base = self.encoding.base
        lo_table, hi_table = self._split_tables()
        out: List[LweSample] = []
        out_bounds: List[int] = []
        carry: Optional[LweSample] = None
        carry_bound = 0
        for i, (digit, bound) in enumerate(zip(x.digits, x.bounds)):
            if carry is not None:
                s = lwe_add(digit, carry)
                s_bound = bound + carry_bound
            else:
                s, s_bound = digit, bound
            last = i == x.width - 1
            if s_bound < base:
                out.append(s)
                out_bounds.append(s_bound)
                carry, carry_bound = None, 0
            elif last:
                (lo,) = self._pbs([s], [lo_table])
                out.append(lo)
                out_bounds.append(base - 1)
            else:
                lo, hi = self._pbs([s, s], [lo_table, hi_table])
                out.append(lo)
                out_bounds.append(base - 1)
                carry, carry_bound = hi, s_bound // base
        return RadixInt(digits=out, bounds=tuple(out_bounds), encoding=self.encoding)

    # -- linear ops (no bootstrapping) ---------------------------------------
    def _check_pair(self, x: RadixInt, y: RadixInt, operation: str) -> None:
        if x.encoding != self.encoding or y.encoding != self.encoding:
            raise ValueError(f"{operation}: operand encoding mismatch")
        if x.width != y.width:
            raise ValueError(
                f"{operation}: operand widths differ ({x.width} vs {y.width})"
            )

    def add(self, x: RadixInt, y: RadixInt) -> RadixInt:
        """Homomorphic addition mod ``B^width``.

        Digit-wise LWE addition — zero bootstraps — whenever the combined
        bounds fit the carry budget; otherwise the wider operand(s) are carry
        propagated first.
        """
        self._check_pair(x, y, "add")
        limit = self.max_accumulator_bound
        if max(bx + by for bx, by in zip(x.bounds, y.bounds)) > limit:
            if not x.is_normalized:
                x = self.propagate(x)
            if (
                max(bx + by for bx, by in zip(x.bounds, y.bounds)) > limit
                and not y.is_normalized
            ):
                y = self.propagate(y)
            if max(bx + by for bx, by in zip(x.bounds, y.bounds)) > limit:
                self._require_carry_room("add")
        digits = [lwe_add(a, b) for a, b in zip(x.digits, y.digits)]
        bounds = tuple(bx + by for bx, by in zip(x.bounds, y.bounds))
        return RadixInt(digits=digits, bounds=bounds, encoding=self.encoding)

    def add_scalar(self, x: RadixInt, value: int) -> RadixInt:
        """Add a public integer — pure plaintext digit additions, no bootstraps."""
        scalar_digits = radix_digits(value, x.width, self.encoding)
        limit = self.max_accumulator_bound
        if max(b + d for b, d in zip(x.bounds, scalar_digits)) > limit:
            x = self.propagate(x)
            if max(b + d for b, d in zip(x.bounds, scalar_digits)) > limit:
                self._require_carry_room("add_scalar")
        digits = [
            lwe_add_constant(c, digit_message(d, self.encoding)) if d else c.copy()
            for c, d in zip(x.digits, scalar_digits)
        ]
        bounds = tuple(b + d for b, d in zip(x.bounds, scalar_digits))
        return RadixInt(digits=digits, bounds=bounds, encoding=self.encoding)

    def scale(self, x: RadixInt, scalar: int) -> RadixInt:
        """Multiply by a small public scalar via digit scaling (no bootstraps).

        Requires ``scalar · B − 1`` to fit the carry budget after one
        normalisation; larger constants should go through :meth:`mul`.
        """
        if scalar < 0:
            raise ValueError("scale takes a non-negative scalar")
        if scalar == 0:
            dim = x.digits[0].dimension
            return trivial_radix(0, x.width, self.encoding, dim)
        limit = self.max_accumulator_bound
        if max(x.bounds) * scalar > limit:
            x = self.propagate(x)
        if max(x.bounds) * scalar > limit:
            raise ValueError(
                f"scalar {scalar} overflows the carry budget {limit} "
                f"of a normalised digit"
            )
        digits = [lwe_scale(scalar, d) for d in x.digits]
        bounds = tuple(b * scalar for b in x.bounds)
        return RadixInt(digits=digits, bounds=bounds, encoding=self.encoding)

    # -- multiplication ------------------------------------------------------
    def _pack(self, hi: LweSample, lo: LweSample) -> LweSample:
        """The packed digit ``B·hi + lo`` (both operands normalised)."""
        return lwe_add(lwe_scale(self.encoding.base, hi), lo)

    def mul(self, x: RadixInt, y: RadixInt) -> RadixInt:
        """Homomorphic multiplication mod ``B^width``.

        Every partial-product digit — ``(x_i · y_j) mod B`` at position
        ``i + j`` and ``(x_i · y_j) div B`` at position ``i + j + 1`` — is one
        LUT row over the packed digit ``B·x_i + y_j``, and **all** rows share a
        single batched blind rotation.  The rows are then summed linearly in
        carry-budget-sized chunks with propagation sweeps in between.
        """
        self._check_pair(x, y, "mul")
        self._require_packing("mul")
        self._require_carry_room("mul")
        if not x.is_normalized:
            x = self.propagate(x)
        if not y.is_normalized:
            y = self.propagate(y)
        base, space = self.encoding.base, self.encoding.space
        width = x.width

        lo_mul = [((p // base) * (p % base)) % base for p in range(space)]
        hi_mul = [((p // base) * (p % base)) // base for p in range(space)]
        rows: List[LweSample] = []
        tables: List[List[int]] = []
        positions: List[int] = []
        for i in range(width):
            for j in range(width - i):
                packed = self._pack(x.digits[i], y.digits[j])
                rows.append(packed)
                tables.append(lo_mul)
                positions.append(i + j)
                if i + j + 1 < width:
                    rows.append(packed)
                    tables.append(hi_mul)
                    positions.append(i + j + 1)
        products = self._pbs(rows, tables)

        columns: List[List[LweSample]] = [[] for _ in range(width)]
        for position, sample in zip(positions, products):
            columns[position].append(sample)

        chunk = max(1, self.max_accumulator_bound // (base - 1))
        dim = x.digits[0].dimension
        acc: Optional[RadixInt] = None
        while any(columns):
            layer_digits: List[LweSample] = []
            layer_bounds: List[int] = []
            for position in range(width):
                taken = columns[position][:chunk]
                columns[position] = columns[position][chunk:]
                if not taken:
                    layer_digits.append(
                        lwe_encrypt_trivial(dim, digit_message(0, self.encoding))
                    )
                    layer_bounds.append(0)
                    continue
                total = taken[0]
                for term in taken[1:]:
                    total = lwe_add(total, term)
                layer_digits.append(total)
                layer_bounds.append(len(taken) * (base - 1))
            layer = RadixInt(
                digits=layer_digits, bounds=tuple(layer_bounds), encoding=self.encoding
            )
            acc = layer if acc is None else self.add(acc, layer)
        assert acc is not None
        return self.propagate(acc)

    # -- comparisons ---------------------------------------------------------
    def gt(self, x: RadixInt, y: RadixInt) -> LweSample:
        """Encrypted ``x > y`` as a digit ciphertext of 0 or 1.

        One packed sign LUT per digit (all sharing one batched rotation) maps
        each position to a trit ``{0: lt, 1: eq, 2: gt}``; the trits are then
        folded most-significant-first through ``r' = r if r ≠ eq else s`` —
        one bootstrap per remaining digit.
        """
        self._check_pair(x, y, "gt")
        self._require_packing("gt")
        space = self.encoding.space
        if space < 9:
            raise ValueError(
                "gt folds trits as 3·r + s and needs a plaintext space >= 9"
            )
        if not x.is_normalized:
            x = self.propagate(x)
        if not y.is_normalized:
            y = self.propagate(y)
        base = self.encoding.base

        def trit(a: int, b: int) -> int:
            return 2 if a > b else (1 if a == b else 0)

        sign_table = [trit(p // base, p % base) for p in range(space)]
        packed = [self._pack(xd, yd) for xd, yd in zip(x.digits, y.digits)]
        trits = self._pbs(packed, sign_table)

        # r' = r unless r is still "equal so far", in which case the next trit
        # decides; the final fold collapses straight to the boolean answer.
        fold = [(v % 3 if v // 3 == 1 else v // 3) for v in range(space)]
        fold_final = [1 if (v % 3 if v // 3 == 1 else v // 3) == 2 else 0 for v in range(space)]
        result = trits[-1]
        remaining = list(reversed(trits[:-1]))
        if not remaining:
            final_map = [1 if v == 2 else 0 for v in range(space)]
            (result,) = self._pbs([result], [final_map])
            return result
        for index, s in enumerate(remaining):
            combined = lwe_add(lwe_scale(3, result), s)
            table = fold_final if index == len(remaining) - 1 else fold
            (result,) = self._pbs([combined], [table])
        return result

    def eq(self, x: RadixInt, y: RadixInt) -> LweSample:
        """Encrypted ``x == y`` as a digit ciphertext of 0 or 1.

        Per-digit packed equality LUTs (one batched rotation) produce 0/1
        indicators that are *summed linearly*; a final count-equals-width LUT
        collapses the sum — ``width + 1`` bootstraps total for typical widths.
        """
        self._check_pair(x, y, "eq")
        self._require_packing("eq")
        if not x.is_normalized:
            x = self.propagate(x)
        if not y.is_normalized:
            y = self.propagate(y)
        base, space = self.encoding.base, self.encoding.space
        eq_table = [1 if (p // base) == (p % base) else 0 for p in range(space)]
        packed = [self._pack(xd, yd) for xd, yd in zip(x.digits, y.digits)]
        bits = self._pbs(packed, eq_table)
        limit = self.max_accumulator_bound
        while len(bits) > 1:
            group = bits[: min(len(bits), limit)]
            rest = bits[len(group):]
            total = group[0]
            for term in group[1:]:
                total = lwe_add(total, term)
            all_set = [1 if v == len(group) else 0 for v in range(space)]
            (folded,) = self._pbs([total], [all_set])
            bits = [folded] + rest
        return bits[0]

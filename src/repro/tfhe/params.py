"""TFHE parameter sets.

The paper evaluates the standard 110-bit-security TFHE parameters of the
reference library (Section 5): ring degree ``N = 1024``, TLWE dimension
``k = 1``, gadget base ``Bg = 1024`` with decomposition length ``l = 3`` and
LWE dimension ``n = 630``.  Bootstrapping a gate with those parameters in pure
Python takes seconds, so the test suite mostly uses reduced parameter sets
whose noise budgets are scaled to keep gates correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LweParams:
    """Parameters of the scalar (T)LWE encryption layer."""

    dimension: int
    noise_stddev: float

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("LWE dimension must be positive")
        if not 0 <= self.noise_stddev < 1:
            raise ValueError("noise stddev must lie in [0, 1)")


@dataclass(frozen=True)
class TlweParams:
    """Parameters of the ring (TRLWE) encryption layer."""

    degree: int
    mask_count: int
    noise_stddev: float

    def __post_init__(self) -> None:
        if self.degree <= 0 or self.degree & (self.degree - 1):
            raise ValueError("ring degree must be a power of two")
        if self.mask_count <= 0:
            raise ValueError("mask count k must be positive")
        if not 0 <= self.noise_stddev < 1:
            raise ValueError("noise stddev must lie in [0, 1)")

    @property
    def extracted_lwe_dimension(self) -> int:
        """Dimension of the LWE key extracted from the ring key."""
        return self.degree * self.mask_count


@dataclass(frozen=True)
class TgswParams:
    """Parameters of the TGSW (gadget) layer used for bootstrapping keys."""

    decomp_length: int
    decomp_base_bits: int

    def __post_init__(self) -> None:
        if self.decomp_length <= 0:
            raise ValueError("decomposition length l must be positive")
        if not 1 <= self.decomp_base_bits <= 31:
            raise ValueError("decomposition base bits must lie in [1, 31]")

    @property
    def base(self) -> int:
        """The gadget decomposition base ``Bg``."""
        return 1 << self.decomp_base_bits


@dataclass(frozen=True)
class KeySwitchParams:
    """Parameters of the LWE key-switching key."""

    base_bits: int
    length: int
    noise_stddev: float

    def __post_init__(self) -> None:
        if self.base_bits <= 0:
            raise ValueError("key-switch base bits must be positive")
        if self.length <= 0:
            raise ValueError("key-switch length must be positive")

    @property
    def base(self) -> int:
        return 1 << self.base_bits


@dataclass(frozen=True)
class DigitEncoding:
    """A multi-bit plaintext encoding for programmable bootstrapping.

    A digit carries ``message_bits`` of payload plus ``carry_bits`` of
    headroom for linear accumulation before the next bootstrapping; with the
    mandatory padding bit the encoding occupies ``2·2^(message_bits +
    carry_bits)`` evenly spaced torus slots, of which only the lower half
    (phases in ``[0, 1/2)``) ever holds a valid message.  The padding bit is
    what makes the negacyclic blind rotation implement an arbitrary lookup
    table instead of only sign extraction.
    """

    message_bits: int
    carry_bits: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.message_bits <= 4:
            raise ValueError("digit message width must lie in [1, 4] bits")
        if self.carry_bits < 0:
            raise ValueError("carry width must be non-negative")
        if self.message_bits + self.carry_bits > 6:
            raise ValueError("digit plaintext space is limited to 6 bits")

    @property
    def base(self) -> int:
        """The radix base ``B = 2^message_bits`` of one digit."""
        return 1 << self.message_bits

    @property
    def space(self) -> int:
        """The plaintext modulus ``P = 2^(message_bits + carry_bits)``."""
        return 1 << (self.message_bits + self.carry_bits)

    @property
    def torus_space(self) -> int:
        """Torus slot count ``2P`` including the padding bit."""
        return 2 * self.space

    def validate_for(self, params: "TFHEParameters") -> None:
        """Reject encodings the parameter set cannot carry.

        Structural fit: every plaintext slot must own a whole (non-empty) run
        of test-vector coefficients (``N % P == 0``) and the slot count must
        stay within the parameter set's rated ``message_space``.
        """
        if self.torus_space > params.message_space:
            raise ValueError(
                f"digit encoding needs {self.torus_space} torus slots but "
                f"{params.name!r} is rated for message_space="
                f"{params.message_space}"
            )
        if params.N % self.space:
            raise ValueError(
                f"plaintext modulus {self.space} does not divide the ring "
                f"degree {params.N}: test-vector slots would be fractional"
            )


@dataclass(frozen=True)
class TFHEParameters:
    """A complete TFHE gate-bootstrapping parameter set."""

    name: str
    security_bits: int
    lwe: LweParams
    tlwe: TlweParams
    tgsw: TgswParams
    keyswitch: KeySwitchParams
    #: Largest plaintext space (torus slot count, padding bit included) this
    #: parameter set's noise budget is rated for.  Gate bootstrapping uses the
    #: 8-ary space (messages at ±1/8); digit encodings occupy ``2P`` slots and
    #: are rejected when ``2P`` exceeds this rating (see
    #: :meth:`DigitEncoding.validate_for`).
    message_space: int = 8

    def __post_init__(self) -> None:
        space = self.message_space
        if space < 4 or space & (space - 1):
            raise ValueError("message_space must be a power of two >= 4")
        if space > 2 * self.tlwe.degree:
            raise ValueError(
                f"message_space {space} exceeds the {2 * self.tlwe.degree} "
                f"torus slots resolvable by ring degree {self.tlwe.degree}"
            )

    @property
    def n(self) -> int:
        """LWE dimension (the paper's ``n``)."""
        return self.lwe.dimension

    @property
    def N(self) -> int:  # noqa: N802 - matches the paper's notation
        """Ring polynomial degree (the paper's ``N``)."""
        return self.tlwe.degree

    @property
    def k(self) -> int:
        """TLWE mask count (the paper's ``k``)."""
        return self.tlwe.mask_count

    @property
    def l(self) -> int:
        """Gadget decomposition length (the paper's ``l``)."""
        return self.tgsw.decomp_length

    @property
    def Bg(self) -> int:  # noqa: N802 - matches the paper's notation
        """Gadget decomposition base (the paper's ``Bg``)."""
        return self.tgsw.base

    def describe(self) -> str:
        """One-line human readable summary of the parameter set."""
        return (
            f"{self.name}: n={self.n}, N={self.N}, k={self.k}, "
            f"Bg=2^{self.tgsw.decomp_base_bits}, l={self.l}, "
            f"ks=2^{self.keyswitch.base_bits}x{self.keyswitch.length}, "
            f"~{self.security_bits}-bit security"
        )


#: The paper's parameter set (Section 5): standard 110-bit security TFHE
#: parameters with N=1024, k=1, Bg=1024, l=3 and n=630.
PAPER_110BIT = TFHEParameters(
    name="paper-110bit",
    security_bits=110,
    lwe=LweParams(dimension=630, noise_stddev=2.44e-5),
    tlwe=TlweParams(degree=1024, mask_count=1, noise_stddev=3.73e-9),
    tgsw=TgswParams(decomp_length=3, decomp_base_bits=10),
    keyswitch=KeySwitchParams(base_bits=2, length=8, noise_stddev=2.44e-5),
    # Rated for gate bootstrapping only (8 torus slices): the paper evaluates
    # boolean circuits, and the mod-switch rounding noise of n=630 coefficients
    # eats too much of the narrower digit margins for a multi-bit rating here —
    # production radix stacks move to N=2048 rings for 2+2-bit digits.
    message_space=8,
)

#: Reduced parameters for the functional test-suite.  The ring and LWE
#: dimensions are shrunk aggressively and the noise is shrunk accordingly so
#: gate bootstrapping still decrypts correctly; there is **no** security claim.
TEST_SMALL = TFHEParameters(
    name="test-small",
    security_bits=0,
    lwe=LweParams(dimension=32, noise_stddev=2.0**-20),
    tlwe=TlweParams(degree=128, mask_count=1, noise_stddev=2.0**-28),
    tgsw=TgswParams(decomp_length=3, decomp_base_bits=8),
    keyswitch=KeySwitchParams(base_bits=4, length=5, noise_stddev=2.0**-20),
    # n=32 / N=128 leaves ~3.5σ of margin at P=8 (16 slots); P=16 would flake.
    message_space=16,
)

#: An even smaller set for property-based tests that bootstrap many times.
TEST_TINY = TFHEParameters(
    name="test-tiny",
    security_bits=0,
    lwe=LweParams(dimension=16, noise_stddev=2.0**-22),
    tlwe=TlweParams(degree=64, mask_count=1, noise_stddev=2.0**-30),
    tgsw=TgswParams(decomp_length=2, decomp_base_bits=10),
    keyswitch=KeySwitchParams(base_bits=5, length=4, noise_stddev=2.0**-22),
    # N=64 only resolves P=8 (16 slots) at ~5σ of mod-switch margin.
    message_space=16,
)

#: Mid-size parameters used by integration tests that want a realistic ring
#: degree without the cost of the full 110-bit LWE dimension.
TEST_MEDIUM = TFHEParameters(
    name="test-medium",
    security_bits=0,
    lwe=LweParams(dimension=64, noise_stddev=2.0**-20),
    tlwe=TlweParams(degree=512, mask_count=1, noise_stddev=2.0**-28),
    tgsw=TgswParams(decomp_length=3, decomp_base_bits=10),
    keyswitch=KeySwitchParams(base_bits=4, length=5, noise_stddev=2.0**-20),
    # n=64 / N=512 keeps ~10σ of margin at P=16 (32 slots).
    message_space=32,
)

#: A parameter set sized for programmable-bootstrapping tests: the LWE
#: dimension stays tiny (cheap blind rotations) while the ring degree is
#: large enough to resolve 4-bit digits.  sqrt(n/96)/N ≈ 0.0016 leaves ~5σ of
#: margin even at P=32 (64 slots).  No security claim.
TEST_PBS = TFHEParameters(
    name="test-pbs",
    security_bits=0,
    lwe=LweParams(dimension=16, noise_stddev=2.0**-22),
    tlwe=TlweParams(degree=256, mask_count=1, noise_stddev=2.0**-30),
    tgsw=TgswParams(decomp_length=2, decomp_base_bits=10),
    keyswitch=KeySwitchParams(base_bits=5, length=4, noise_stddev=2.0**-22),
    message_space=64,
)

PARAMETER_SETS = {
    params.name: params
    for params in (PAPER_110BIT, TEST_SMALL, TEST_TINY, TEST_MEDIUM, TEST_PBS)
}


def get_parameters(name: str) -> TFHEParameters:
    """Look up a named parameter set (raises ``KeyError`` for unknown names)."""
    return PARAMETER_SETS[name]

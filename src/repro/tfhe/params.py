"""TFHE parameter sets.

The paper evaluates the standard 110-bit-security TFHE parameters of the
reference library (Section 5): ring degree ``N = 1024``, TLWE dimension
``k = 1``, gadget base ``Bg = 1024`` with decomposition length ``l = 3`` and
LWE dimension ``n = 630``.  Bootstrapping a gate with those parameters in pure
Python takes seconds, so the test suite mostly uses reduced parameter sets
whose noise budgets are scaled to keep gates correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LweParams:
    """Parameters of the scalar (T)LWE encryption layer."""

    dimension: int
    noise_stddev: float

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("LWE dimension must be positive")
        if not 0 <= self.noise_stddev < 1:
            raise ValueError("noise stddev must lie in [0, 1)")


@dataclass(frozen=True)
class TlweParams:
    """Parameters of the ring (TRLWE) encryption layer."""

    degree: int
    mask_count: int
    noise_stddev: float

    def __post_init__(self) -> None:
        if self.degree <= 0 or self.degree & (self.degree - 1):
            raise ValueError("ring degree must be a power of two")
        if self.mask_count <= 0:
            raise ValueError("mask count k must be positive")
        if not 0 <= self.noise_stddev < 1:
            raise ValueError("noise stddev must lie in [0, 1)")

    @property
    def extracted_lwe_dimension(self) -> int:
        """Dimension of the LWE key extracted from the ring key."""
        return self.degree * self.mask_count


@dataclass(frozen=True)
class TgswParams:
    """Parameters of the TGSW (gadget) layer used for bootstrapping keys."""

    decomp_length: int
    decomp_base_bits: int

    def __post_init__(self) -> None:
        if self.decomp_length <= 0:
            raise ValueError("decomposition length l must be positive")
        if not 1 <= self.decomp_base_bits <= 31:
            raise ValueError("decomposition base bits must lie in [1, 31]")

    @property
    def base(self) -> int:
        """The gadget decomposition base ``Bg``."""
        return 1 << self.decomp_base_bits


@dataclass(frozen=True)
class KeySwitchParams:
    """Parameters of the LWE key-switching key."""

    base_bits: int
    length: int
    noise_stddev: float

    def __post_init__(self) -> None:
        if self.base_bits <= 0:
            raise ValueError("key-switch base bits must be positive")
        if self.length <= 0:
            raise ValueError("key-switch length must be positive")

    @property
    def base(self) -> int:
        return 1 << self.base_bits


@dataclass(frozen=True)
class TFHEParameters:
    """A complete TFHE gate-bootstrapping parameter set."""

    name: str
    security_bits: int
    lwe: LweParams
    tlwe: TlweParams
    tgsw: TgswParams
    keyswitch: KeySwitchParams
    #: Plaintext space used by gate bootstrapping (messages at +-1/8).
    message_space: int = 8

    @property
    def n(self) -> int:
        """LWE dimension (the paper's ``n``)."""
        return self.lwe.dimension

    @property
    def N(self) -> int:  # noqa: N802 - matches the paper's notation
        """Ring polynomial degree (the paper's ``N``)."""
        return self.tlwe.degree

    @property
    def k(self) -> int:
        """TLWE mask count (the paper's ``k``)."""
        return self.tlwe.mask_count

    @property
    def l(self) -> int:
        """Gadget decomposition length (the paper's ``l``)."""
        return self.tgsw.decomp_length

    @property
    def Bg(self) -> int:  # noqa: N802 - matches the paper's notation
        """Gadget decomposition base (the paper's ``Bg``)."""
        return self.tgsw.base

    def describe(self) -> str:
        """One-line human readable summary of the parameter set."""
        return (
            f"{self.name}: n={self.n}, N={self.N}, k={self.k}, "
            f"Bg=2^{self.tgsw.decomp_base_bits}, l={self.l}, "
            f"ks=2^{self.keyswitch.base_bits}x{self.keyswitch.length}, "
            f"~{self.security_bits}-bit security"
        )


#: The paper's parameter set (Section 5): standard 110-bit security TFHE
#: parameters with N=1024, k=1, Bg=1024, l=3 and n=630.
PAPER_110BIT = TFHEParameters(
    name="paper-110bit",
    security_bits=110,
    lwe=LweParams(dimension=630, noise_stddev=2.44e-5),
    tlwe=TlweParams(degree=1024, mask_count=1, noise_stddev=3.73e-9),
    tgsw=TgswParams(decomp_length=3, decomp_base_bits=10),
    keyswitch=KeySwitchParams(base_bits=2, length=8, noise_stddev=2.44e-5),
)

#: Reduced parameters for the functional test-suite.  The ring and LWE
#: dimensions are shrunk aggressively and the noise is shrunk accordingly so
#: gate bootstrapping still decrypts correctly; there is **no** security claim.
TEST_SMALL = TFHEParameters(
    name="test-small",
    security_bits=0,
    lwe=LweParams(dimension=32, noise_stddev=2.0**-20),
    tlwe=TlweParams(degree=128, mask_count=1, noise_stddev=2.0**-28),
    tgsw=TgswParams(decomp_length=3, decomp_base_bits=8),
    keyswitch=KeySwitchParams(base_bits=4, length=5, noise_stddev=2.0**-20),
)

#: An even smaller set for property-based tests that bootstrap many times.
TEST_TINY = TFHEParameters(
    name="test-tiny",
    security_bits=0,
    lwe=LweParams(dimension=16, noise_stddev=2.0**-22),
    tlwe=TlweParams(degree=64, mask_count=1, noise_stddev=2.0**-30),
    tgsw=TgswParams(decomp_length=2, decomp_base_bits=10),
    keyswitch=KeySwitchParams(base_bits=5, length=4, noise_stddev=2.0**-22),
)

#: Mid-size parameters used by integration tests that want a realistic ring
#: degree without the cost of the full 110-bit LWE dimension.
TEST_MEDIUM = TFHEParameters(
    name="test-medium",
    security_bits=0,
    lwe=LweParams(dimension=64, noise_stddev=2.0**-20),
    tlwe=TlweParams(degree=512, mask_count=1, noise_stddev=2.0**-28),
    tgsw=TgswParams(decomp_length=3, decomp_base_bits=10),
    keyswitch=KeySwitchParams(base_bits=4, length=5, noise_stddev=2.0**-20),
)

PARAMETER_SETS = {
    params.name: params
    for params in (PAPER_110BIT, TEST_SMALL, TEST_TINY, TEST_MEDIUM)
}


def get_parameters(name: str) -> TFHEParameters:
    """Look up a named parameter set (raises ``KeyError`` for unknown names)."""
    return PARAMETER_SETS[name]

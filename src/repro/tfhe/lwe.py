"""Scalar TLWE (LWE over the torus) encryption.

A TLWE sample under a binary secret key ``s ∈ B^n`` is a pair ``(a, b)`` with
``a`` uniform in ``T^n`` and ``b = a·s + e + m`` where ``e`` is Gaussian noise
and ``m`` the torus-encoded message (Section 2 of the paper).  Gate
bootstrapping encodes Boolean messages at the torus points ``±1/8``.

Besides the scalar :class:`LweSample` this module provides :class:`LweBatch`,
a stack of ``B`` independent ciphertexts stored as contiguous arrays, plus the
matching vectorised linear operations (``lwe_batch_*``).  Batched results are
bit-identical to applying the scalar operation to each element of the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.tfhe.params import DigitEncoding, LweParams
from repro.tfhe.torus import (
    double_to_torus32,
    gaussian_torus32,
    modswitch_from_torus32,
    modswitch_to_torus32,
    torus32_from_int64,
    torus32_to_double,
    uniform_torus32,
)
from repro.utils.rng import SeedLike, make_rng


@dataclass
class LweSample:
    """A scalar LWE ciphertext ``(a, b)`` over the discretised torus."""

    a: np.ndarray  # int32[n]
    b: np.int32

    @property
    def dimension(self) -> int:
        return int(self.a.shape[0])

    def copy(self) -> "LweSample":
        """A deep copy (fresh arrays, same ciphertext value)."""
        return LweSample(self.a.copy(), np.int32(self.b))


@dataclass
class LweBatch:
    """A batch of ``B`` independent LWE ciphertexts under one key.

    ``a`` has shape ``(B, n)`` and ``b`` shape ``(B,)``; row ``i`` is the
    ciphertext ``(a[i], b[i])``.  The batch axis only amortises dispatch
    overhead — every batched operation is bit-identical to looping the scalar
    one over the rows.
    """

    a: np.ndarray  # int32[B, n]
    b: np.ndarray  # int32[B]

    @property
    def batch_size(self) -> int:
        return int(self.a.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.a.shape[1])

    def __len__(self) -> int:
        return self.batch_size

    def __getitem__(self, index: int) -> LweSample:
        return LweSample(a=self.a[index].copy(), b=np.int32(self.b[index]))

    def copy(self) -> "LweBatch":
        """A deep copy of the whole batch."""
        return LweBatch(self.a.copy(), self.b.copy())

    @classmethod
    def from_samples(cls, samples: Iterable[LweSample]) -> "LweBatch":
        samples = list(samples)
        if not samples:
            raise ValueError("cannot build an empty batch")
        a = np.stack([s.a for s in samples]).astype(np.int32)
        b = np.array([np.int32(s.b) for s in samples], dtype=np.int32)
        return cls(a=a, b=b)

    def to_samples(self) -> List[LweSample]:
        """Unpack the batch into independent scalar samples (row order)."""
        return [self[i] for i in range(self.batch_size)]

    def rows(self, start: int, stop: int) -> "LweBatch":
        """A copy of rows ``[start, stop)`` as a new, independent batch."""
        if not (0 <= start < stop <= self.batch_size):
            raise ValueError("row range out of bounds")
        return LweBatch(a=self.a[start:stop].copy(), b=self.b[start:stop].copy())


@dataclass
class LweKey:
    """A binary LWE secret key."""

    params: LweParams
    key: np.ndarray  # int32[n] with entries in {0, 1}

    @property
    def dimension(self) -> int:
        return int(self.key.shape[0])


def lwe_key_generate(params: LweParams, rng: SeedLike = None) -> LweKey:
    """Sample a uniform binary secret key ``s ← B^n``."""
    rng = make_rng(rng)
    key = rng.integers(0, 2, size=params.dimension, dtype=np.int64).astype(np.int32)
    return LweKey(params=params, key=key)


def lwe_encrypt(
    key: LweKey,
    message: np.int32,
    noise_stddev: float | None = None,
    rng: SeedLike = None,
) -> LweSample:
    """Encrypt a torus message: ``b = a·s + e + message``."""
    rng = make_rng(rng)
    stddev = key.params.noise_stddev if noise_stddev is None else noise_stddev
    a = uniform_torus32(key.dimension, rng)
    noise = gaussian_torus32(stddev, size=None, rng=rng)
    phase = int(np.dot(a.astype(np.int64), key.key.astype(np.int64)))
    b = torus32_from_int64(phase + int(noise) + int(np.int64(message)))
    return LweSample(a=a, b=np.int32(b))


def lwe_encrypt_trivial(dimension: int, message: np.int32) -> LweSample:
    """A noiseless, keyless ("trivial") encryption: ``a = 0, b = message``.

    Trivial samples encrypt public constants; they are used for the constant
    gate and as the starting accumulator of a bootstrapping.
    """
    return LweSample(a=np.zeros(dimension, dtype=np.int32), b=np.int32(message))


def lwe_phase(key: LweKey, sample: LweSample) -> np.int32:
    """The phase ``b - a·s`` (message plus noise) of a sample."""
    dot = int(np.dot(sample.a.astype(np.int64), key.key.astype(np.int64)))
    return np.int32(torus32_from_int64(int(np.int64(sample.b)) - dot))


def lwe_decrypt_bit(key: LweKey, sample: LweSample) -> int:
    """Decrypt a gate-bootstrapping ciphertext (messages at ``±1/8``) to a bit.

    Decryption follows the paper's description: the phase is computed and
    the noise is rounded away by looking only at its sign.
    """
    phase = lwe_phase(key, sample)
    return int(phase > 0)


def lwe_noise(key: LweKey, sample: LweSample, message: np.int32) -> float:
    """The (signed, real-valued) noise of a sample given its true message."""
    phase = lwe_phase(key, sample)
    return float(torus32_to_double(torus32_from_int64(int(phase) - int(np.int64(message)))))


def lwe_add(x: LweSample, y: LweSample) -> LweSample:
    """Homomorphic addition of two LWE samples."""
    a = torus32_from_int64(x.a.astype(np.int64) + y.a.astype(np.int64))
    b = torus32_from_int64(int(np.int64(x.b)) + int(np.int64(y.b)))
    return LweSample(a=a, b=np.int32(b))


def lwe_sub(x: LweSample, y: LweSample) -> LweSample:
    """Homomorphic subtraction of two LWE samples."""
    a = torus32_from_int64(x.a.astype(np.int64) - y.a.astype(np.int64))
    b = torus32_from_int64(int(np.int64(x.b)) - int(np.int64(y.b)))
    return LweSample(a=a, b=np.int32(b))


def lwe_negate(x: LweSample) -> LweSample:
    """Homomorphic negation of an LWE sample."""
    a = torus32_from_int64(-x.a.astype(np.int64))
    b = torus32_from_int64(-int(np.int64(x.b)))
    return LweSample(a=a, b=np.int32(b))


def lwe_scale(scalar: int, x: LweSample) -> LweSample:
    """Multiply an LWE sample by a small public integer."""
    a = torus32_from_int64(int(scalar) * x.a.astype(np.int64))
    b = torus32_from_int64(int(scalar) * int(np.int64(x.b)))
    return LweSample(a=a, b=np.int32(b))


def lwe_add_constant(x: LweSample, constant: np.int32) -> LweSample:
    """Add a public torus constant to the message of an LWE sample."""
    b = torus32_from_int64(int(np.int64(x.b)) + int(np.int64(constant)))
    return LweSample(a=x.a.copy(), b=np.int32(b))


def gate_message(bit: int) -> np.int32:
    """Torus encoding of a Boolean for gate bootstrapping: ``±1/8``."""
    mu = double_to_torus32(0.125)
    return np.int32(mu if bit else -mu)


# --------------------------------------------------------------------------- #
# multi-bit digit encoding (programmable bootstrapping)                       #
# --------------------------------------------------------------------------- #


def digit_message(value: int, encoding: DigitEncoding) -> np.int32:
    """Torus encoding of one radix digit: slot ``value`` of ``2P`` slots.

    Valid digits lie in ``[0, P)`` so the encoded phase stays in ``[0, 1/2)``
    — the padding bit that makes the negacyclic blind rotation a true lookup.
    """
    value = int(value)
    if not 0 <= value < encoding.space:
        raise ValueError(
            f"digit {value} out of range [0, {encoding.space}) for a "
            f"{encoding.message_bits}+{encoding.carry_bits}-bit encoding"
        )
    return np.int32(modswitch_to_torus32(value, encoding.torus_space))


def digit_decode(phase, encoding: DigitEncoding) -> int:
    """Round a torus phase to the nearest of the ``2P`` digit slots.

    Valid ciphertexts decode into ``[0, P)``; a result in ``[P, 2P)`` means
    the padding bit was violated (carry overflow or noise beyond the margin).
    """
    return int(modswitch_from_torus32(int(phase), encoding.torus_space))


def encrypt_digit(
    key: LweKey,
    value: int,
    encoding: DigitEncoding,
    noise_stddev: float | None = None,
    rng: SeedLike = None,
) -> LweSample:
    """Encrypt one radix digit ``value ∈ [0, P)`` under ``encoding``."""
    return lwe_encrypt(key, digit_message(value, encoding), noise_stddev, rng)


def decrypt_digit(key: LweKey, sample: LweSample, encoding: DigitEncoding) -> int:
    """Decrypt a digit ciphertext back to its plaintext slot in ``[0, 2P)``."""
    return digit_decode(lwe_phase(key, sample), encoding)


# --------------------------------------------------------------------------- #
# batched linear algebra                                                      #
# --------------------------------------------------------------------------- #


def lwe_batch_trivial(batch_size: int, dimension: int, message) -> LweBatch:
    """A batch of trivial encryptions; ``message`` is a scalar or a ``(B,)`` array."""
    if batch_size <= 0:
        raise ValueError("batch size must be positive")
    a = np.zeros((batch_size, dimension), dtype=np.int32)
    b = np.broadcast_to(np.asarray(message, dtype=np.int32), (batch_size,)).copy()
    return LweBatch(a=a, b=b)


def lwe_batch_encrypt(
    key: LweKey,
    messages: np.ndarray,
    noise_stddev: float | None = None,
    rng: SeedLike = None,
) -> LweBatch:
    """Encrypt a vector of torus messages as one batch (vectorised sampling)."""
    rng = make_rng(rng)
    messages = np.asarray(messages, dtype=np.int32)
    if messages.ndim != 1:
        raise ValueError("messages must be a 1-D array of torus values")
    stddev = key.params.noise_stddev if noise_stddev is None else noise_stddev
    batch = messages.shape[0]
    a = uniform_torus32((batch, key.dimension), rng)
    noise = gaussian_torus32(stddev, size=batch, rng=rng)
    phase = a.astype(np.int64) @ key.key.astype(np.int64)
    b = torus32_from_int64(phase + noise.astype(np.int64) + messages.astype(np.int64))
    return LweBatch(a=a, b=b.astype(np.int32))


def lwe_batch_phase(key: LweKey, batch: LweBatch) -> np.ndarray:
    """The per-ciphertext phases ``b - a·s`` of a batch, shape ``(B,)``."""
    dot = batch.a.astype(np.int64) @ key.key.astype(np.int64)
    return torus32_from_int64(batch.b.astype(np.int64) - dot)


def lwe_batch_decrypt_bits(key: LweKey, batch: LweBatch) -> np.ndarray:
    """Decrypt a batch of gate-bootstrapping ciphertexts to a ``(B,)`` bit array."""
    return (lwe_batch_phase(key, batch) > 0).astype(np.int64)


def lwe_batch_encrypt_digits(
    key: LweKey,
    values,
    encoding: DigitEncoding,
    noise_stddev: float | None = None,
    rng: SeedLike = None,
) -> LweBatch:
    """Encrypt a vector of radix digits as one batch (one row per digit)."""
    messages = np.array(
        [digit_message(int(v), encoding) for v in np.asarray(values).ravel()],
        dtype=np.int32,
    )
    return lwe_batch_encrypt(key, messages, noise_stddev, rng)


def lwe_batch_decrypt_digits(
    key: LweKey, batch: LweBatch, encoding: DigitEncoding
) -> np.ndarray:
    """Decrypt a batch of digit ciphertexts to their ``(B,)`` plaintext slots."""
    phases = lwe_batch_phase(key, batch)
    return np.asarray(
        modswitch_from_torus32(phases, encoding.torus_space), dtype=np.int64
    )


def lwe_batch_add(x: LweBatch, y: LweBatch) -> LweBatch:
    """Elementwise homomorphic addition of two batches."""
    a = torus32_from_int64(x.a.astype(np.int64) + y.a.astype(np.int64))
    b = torus32_from_int64(x.b.astype(np.int64) + y.b.astype(np.int64))
    return LweBatch(a=a, b=b)


def lwe_batch_sub(x: LweBatch, y: LweBatch) -> LweBatch:
    """Elementwise homomorphic subtraction of two batches."""
    a = torus32_from_int64(x.a.astype(np.int64) - y.a.astype(np.int64))
    b = torus32_from_int64(x.b.astype(np.int64) - y.b.astype(np.int64))
    return LweBatch(a=a, b=b)


def lwe_batch_negate(x: LweBatch) -> LweBatch:
    """Elementwise homomorphic negation of a batch."""
    return LweBatch(
        a=torus32_from_int64(-x.a.astype(np.int64)),
        b=torus32_from_int64(-x.b.astype(np.int64)),
    )


def lwe_batch_scale(scalar: int, x: LweBatch) -> LweBatch:
    """Multiply every ciphertext of a batch by a small public integer."""
    a = torus32_from_int64(int(scalar) * x.a.astype(np.int64))
    b = torus32_from_int64(int(scalar) * x.b.astype(np.int64))
    return LweBatch(a=a, b=b)


def lwe_batch_concat(batches) -> LweBatch:
    """Stack several batches (same dimension) into one along the batch axis.

    The level-parallel circuit executor uses this to pack the operands of all
    gates in one dependency level — ``gates × words`` rows — into the single
    mixed-gate bootstrapping call of that level.
    """
    batches = list(batches)
    if not batches:
        raise ValueError("cannot concatenate zero batches")
    dimension = batches[0].dimension
    if any(batch.dimension != dimension for batch in batches):
        raise ValueError("all batches must share the LWE dimension")
    return LweBatch(
        a=np.concatenate([batch.a for batch in batches], axis=0),
        b=np.concatenate([batch.b for batch in batches], axis=0),
    )


def lwe_batch_add_constant(x: LweBatch, constant) -> LweBatch:
    """Add a public torus constant (scalar or ``(B,)``) to a batch's messages."""
    b = torus32_from_int64(x.b.astype(np.int64) + np.asarray(constant, dtype=np.int64))
    return LweBatch(a=x.a.copy(), b=b)

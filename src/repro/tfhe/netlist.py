"""Circuit netlists: a gate-level IR for multi-gate encrypted circuits.

PR 1 gave the repository a batched bootstrapping engine
(:class:`repro.tfhe.gates.BatchGateEvaluator`), but the circuit helpers of
:mod:`repro.tfhe.circuits` still *emitted* gates strictly one after another,
so only the data-parallel batch axis (many words) ever reached the engine.
This module adds the missing representation: a :class:`Circuit` is a small
SSA-style netlist — every node is one Boolean operation producing one named
wire — that a scheduler can analyse *before* anything is evaluated.

The flow mirrors the paper's compilation pipeline (Section 5: "OpenCGRA first
compiles a TFHE logic operation into a data flow graph, solves its
dependencies, and removes structural hazards"), lifted one level up: instead
of compiling the inside of one bootstrapped gate, we compile a whole circuit
of bootstrapped gates, export it to :class:`repro.arch.dfg.DataFlowGraph`,
and let :mod:`repro.tfhe.executor` pack every dependency level into a single
batched bootstrapping call.

Construction is explicit and cheap::

    c = Circuit("adder2")
    a = c.inputs("a", 2)
    b = c.inputs("b", 2)
    s0 = c.gate("xor", a[0], b[0])
    ...
    c.output("sum", [s0, ...])

Word-level constructors (:func:`adder_netlist`, :func:`subtractor_netlist`,
:func:`equal_netlist`, :func:`greater_than_netlist`, :func:`select_netlist`,
:func:`maximum_netlist`, :func:`negate_netlist`) re-express the classic
helpers of :mod:`repro.tfhe.circuits` gate-for-gate, so evaluating a netlist
is bit-identical to the historical eager path.  The compiler frontend
(:mod:`repro.compiler.frontend`) lowers to the same ``*_into`` builders, so
traced programs and hand-built netlists share one gate vocabulary; the
word-level operations it needs beyond the classic set — shift-and-add
multiplication (:func:`multiplier_netlist`), minimum/absolute value and
constant shifts — live here too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.arch.dfg import DataFlowGraph
from repro.arch.ops import OpType
from repro.tfhe.gates import BINARY_GATE_SPECS
from repro.tfhe.lut import MAX_LUT_ARITY, boolean_lut_spec

#: Two-input ops that require a gate bootstrapping when evaluated.
BOOTSTRAPPED_OPS: Tuple[str, ...] = tuple(BINARY_GATE_SPECS) + ("xor", "xnor")

#: Ops that are purely linear over ciphertexts (no bootstrapping, ~free).
LINEAR_OPS: Tuple[str, ...] = ("not", "copy")

#: Source ops that produce wires without consuming any.
SOURCE_OPS: Tuple[str, ...] = ("input", "const")

#: Arity of every recognised fixed-arity op (sources take no wire arguments).
#: ``lut`` nodes are variable-arity (1..MAX_LUT_ARITY inputs, truth table in
#: ``value``) and are validated separately.
OP_ARITY: Dict[str, int] = {
    **{name: 2 for name in BOOTSTRAPPED_OPS},
    "not": 1,
    "copy": 1,
    "input": 0,
    "const": 0,
}


@dataclass(frozen=True)
class Node:
    """One netlist node: an operation producing exactly one wire.

    ``node_id`` doubles as the wire id of the produced value (SSA form).
    ``args`` are the wire ids consumed; ``value`` is only meaningful for
    ``const`` nodes (the public bit) and ``name``/``bit`` only for ``input``
    nodes (which input word and which bit position the wire belongs to).
    """

    node_id: int
    op: str
    args: Tuple[int, ...] = ()
    value: int = 0
    name: str = ""
    bit: int = -1

    @property
    def is_bootstrapped(self) -> bool:
        """Whether evaluating this node costs one gate bootstrapping."""
        return self.op in BOOTSTRAPPED_OPS or self.op == "lut"


class Circuit:
    """A Boolean circuit netlist over named multi-bit inputs and outputs.

    The class is its own builder: :meth:`inputs`, :meth:`constant`,
    :meth:`gate`, :meth:`not_`, :meth:`mux` and :meth:`output` append nodes
    and return wire ids.  Wires are integers; words are LSB-first lists of
    wires, matching the convention of :mod:`repro.tfhe.circuits`.

    The structure is evaluation-free — nothing here touches ciphertexts.
    :func:`repro.tfhe.executor.execute` runs a circuit gate by gate with any
    evaluator, and :class:`repro.tfhe.executor.CircuitExecutor` runs it level
    by level through the batched bootstrapping engine.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.input_wires: Dict[str, Tuple[int, ...]] = {}
        self.output_wires: Dict[str, Tuple[int, ...]] = {}

    # -- builder API ---------------------------------------------------------
    def _add(self, node: Node) -> int:
        self.nodes.append(node)
        return node.node_id

    def _new_id(self) -> int:
        return len(self.nodes)

    def _check_wires(self, wires: Iterable[int]) -> None:
        for wire in wires:
            if not (0 <= int(wire) < len(self.nodes)):
                raise ValueError(f"unknown wire {wire!r}")

    def inputs(self, name: str, width: int) -> List[int]:
        """Declare a ``width``-bit named input word; returns its wires, LSB first."""
        if width <= 0:
            raise ValueError("width must be positive")
        if name in self.input_wires:
            raise ValueError(f"duplicate input {name!r}")
        wires = [
            self._add(Node(self._new_id(), "input", name=name, bit=i))
            for i in range(width)
        ]
        self.input_wires[name] = tuple(wires)
        return wires

    def constant(self, bit: int) -> int:
        """A public constant bit (evaluates to a trivial encryption)."""
        return self._add(Node(self._new_id(), "const", value=int(bool(bit))))

    def gate(self, op: str, a: int, b: int) -> int:
        """A two-input bootstrapped gate (``"nand"``, ``"xor"``, ...)."""
        if op not in BOOTSTRAPPED_OPS:
            raise ValueError(f"unknown gate {op!r}")
        self._check_wires((a, b))
        return self._add(Node(self._new_id(), op, args=(int(a), int(b))))

    def lut(self, table: int, wires: Sequence[int]) -> int:
        """A k-input lookup-table node evaluated in one bootstrapping.

        ``table`` is the truth table over the ``wires`` (bit ``m`` of the
        table is the output when wire ``i`` carries bit ``(m >> i) & 1``).
        Only tables with a single-bootstrap realisation on the ±1/8 encoding
        are accepted — see :func:`repro.tfhe.lut.boolean_lut_spec`.
        """
        wires = [int(w) for w in wires]
        if not 1 <= len(wires) <= MAX_LUT_ARITY:
            raise ValueError(
                f"lut arity must lie in [1, {MAX_LUT_ARITY}], got {len(wires)}"
            )
        table = int(table)
        if not 0 <= table < (1 << (1 << len(wires))):
            raise ValueError("truth table does not fit the lut arity")
        if boolean_lut_spec(table, len(wires)) is None:
            raise ValueError(
                f"truth table 0x{table:x} over {len(wires)} inputs has no "
                f"single-bootstrap realisation"
            )
        self._check_wires(wires)
        return self._add(
            Node(self._new_id(), "lut", args=tuple(wires), value=table)
        )

    def not_(self, a: int) -> int:
        """Linear NOT of a wire (no bootstrapping)."""
        self._check_wires((a,))
        return self._add(Node(self._new_id(), "not", args=(int(a),)))

    def copy(self, a: int) -> int:
        """Identity node (used to alias a wire into an output)."""
        self._check_wires((a,))
        return self._add(Node(self._new_id(), "copy", args=(int(a),)))

    def mux(self, sel: int, if_true: int, if_false: int) -> int:
        """Multiplexer ``sel ? if_true : if_false``, lowered to three gates.

        The lowering — ``OR(AND(sel, t), ANDNY(sel, f))`` — matches the
        evaluators' ``mux`` composition exactly, but exposes the two AND legs
        as *independent* gates, so the level scheduler can run them in the
        same batched bootstrapping call.
        """
        picked_true = self.gate("and", sel, if_true)
        picked_false = self.gate("andny", sel, if_false)
        return self.gate("or", picked_true, picked_false)

    def output(self, name: str, wires: Sequence[int]) -> None:
        """Declare a named output word (LSB first)."""
        if name in self.output_wires:
            raise ValueError(f"duplicate output {name!r}")
        wires = [int(w) for w in wires]
        if not wires:
            raise ValueError("an output needs at least one wire")
        self._check_wires(wires)
        self.output_wires[name] = tuple(wires)

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        """The node that produces wire ``node_id``."""
        return self.nodes[node_id]

    @property
    def gate_count(self) -> int:
        """Number of bootstrapped gates in the netlist."""
        return sum(1 for n in self.nodes if n.is_bootstrapped)

    @property
    def linear_count(self) -> int:
        """Number of linear (bootstrap-free) nodes."""
        return sum(1 for n in self.nodes if n.op in LINEAR_OPS)

    def input_width(self, name: str) -> int:
        """Bit width of a declared input word."""
        return len(self.input_wires[name])

    def live_nodes(self, outputs: Sequence[str] | None = None) -> Set[int]:
        """Wire ids in the transitive fan-in ("cone") of the given outputs.

        Dead nodes — e.g. the discarded carry chain of a truncated
        subtraction — are excluded, so neither executor wastes bootstrappings
        on values nobody reads.
        """
        names = list(outputs) if outputs is not None else list(self.output_wires)
        stack: List[int] = []
        for name in names:
            if name not in self.output_wires:
                raise KeyError(f"unknown output {name!r}")
            stack.extend(self.output_wires[name])
        live: Set[int] = set()
        while stack:
            nid = stack.pop()
            if nid in live:
                continue
            live.add(nid)
            stack.extend(self.nodes[nid].args)
        return live

    def validate(self) -> None:
        """Structural checks: known ops, arities, bit constants, and SSA order."""
        for node in self.nodes:
            if node.op == "lut":
                if not 1 <= len(node.args) <= MAX_LUT_ARITY:
                    raise ValueError(
                        f"lut arity must lie in [1, {MAX_LUT_ARITY}]"
                    )
                if not 0 <= node.value < (1 << (1 << len(node.args))):
                    raise ValueError("lut truth table does not fit its arity")
                if boolean_lut_spec(node.value, len(node.args)) is None:
                    raise ValueError(
                        f"lut table 0x{node.value:x} has no single-bootstrap "
                        f"realisation"
                    )
            elif node.op not in OP_ARITY:
                raise ValueError(f"unknown op {node.op!r}")
            elif len(node.args) != OP_ARITY[node.op]:
                raise ValueError(f"op {node.op!r} expects {OP_ARITY[node.op]} args")
            elif node.op == "const" and node.value not in (0, 1):
                raise ValueError(f"const node carries non-bit value {node.value!r}")
            for arg in node.args:
                if not 0 <= arg < node.node_id:
                    raise ValueError("netlist is not in SSA order")

    def to_dfg(self, outputs: Sequence[str] | None = None) -> DataFlowGraph:
        """Export the output cone as a :class:`repro.arch.dfg.DataFlowGraph`.

        Bootstrapped gates become :data:`OpType.BOOTSTRAPPED_GATE` nodes with
        unit work; sources and linear ops become zero-work
        :data:`OpType.LINEAR_GATE` nodes.  Node ids are preserved (the DFG is
        built over all netlist nodes in SSA order), so levels computed on the
        DFG index straight back into the netlist; dead nodes simply have no
        path to any live output.
        """
        self.validate()
        dfg = DataFlowGraph()
        for node in self.nodes:
            op = OpType.BOOTSTRAPPED_GATE if node.is_bootstrapped else OpType.LINEAR_GATE
            work = 1.0 if node.is_bootstrapped else 0.0
            nid = dfg.add_node(op, work, tag=node.op, predecessors=node.args)
            assert nid == node.node_id
        return dfg


# --------------------------------------------------------------------------- #
# word-level constructors (gate-for-gate ports of repro.tfhe.circuits)        #
# --------------------------------------------------------------------------- #


def full_adder_into(c: Circuit, a: int, b: int, carry: int) -> Tuple[int, int]:
    """Append one full-adder stage; returns ``(sum, carry_out)`` wires."""
    a_xor_b = c.gate("xor", a, b)
    total = c.gate("xor", a_xor_b, carry)
    carry_out = c.gate("or", c.gate("and", a, b), c.gate("and", a_xor_b, carry))
    return total, carry_out


def ripple_add_into(
    c: Circuit, a: Sequence[int], b: Sequence[int]
) -> List[int]:
    """Append a ripple-carry adder; returns ``width + 1`` wires (carry last)."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    carry = c.constant(0)
    out: List[int] = []
    for wire_a, wire_b in zip(a, b):
        total, carry = full_adder_into(c, wire_a, wire_b, carry)
        out.append(total)
    out.append(carry)
    return out


def negate_into(c: Circuit, a: Sequence[int]) -> List[int]:
    """Append a two's-complement negation; returns ``len(a)`` wires."""
    inverted = [c.not_(wire) for wire in a]
    one = [c.constant(1)] + [c.constant(0)] * (len(a) - 1)
    return ripple_add_into(c, inverted, one)[: len(a)]


def greater_than_into(c: Circuit, a: Sequence[int], b: Sequence[int]) -> int:
    """Append an unsigned ``a > b`` comparator (bit-serial, LSB to MSB)."""
    result = c.constant(0)
    for wire_a, wire_b in zip(a, b):
        bits_equal = c.gate("xnor", wire_a, wire_b)
        a_wins_here = c.gate("andyn", wire_a, wire_b)
        result = c.mux(bits_equal, result, a_wins_here)
    return result


def multiply_into(c: Circuit, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Append a shift-and-add multiplier truncated to ``len(a)`` bits.

    Classic schoolbook form: partial-product row ``j`` is ``a AND b[j]``
    shifted left by ``j``; rows are accumulated with ripple-carry adders over
    the surviving high bits only, so the result wraps modulo ``2**width``
    exactly like :func:`repro.tfhe.circuits.int_to_bits` arithmetic.
    """
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    width = len(a)
    acc = [c.gate("and", wire_a, b[0]) for wire_a in a]
    for j in range(1, width):
        row = [c.gate("and", a[i], b[j]) for i in range(width - j)]
        acc = acc[:j] + ripple_add_into(c, acc[j:], row)[: width - j]
    return acc


def equal_into(c: Circuit, a: Sequence[int], b: Sequence[int]) -> int:
    """Append an equality comparator (AND-chain of per-bit XNORs)."""
    result = c.constant(1)
    for wire_a, wire_b in zip(a, b):
        result = c.gate("and", result, c.gate("xnor", wire_a, wire_b))
    return result


def maximum_into(c: Circuit, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Append an unsigned maximum (comparator feeding a multiplexer)."""
    a_greater = greater_than_into(c, a, b)
    return [c.mux(a_greater, t, f) for t, f in zip(a, b)]


def minimum_into(c: Circuit, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Append an unsigned minimum (comparator feeding a flipped multiplexer)."""
    a_greater = greater_than_into(c, a, b)
    return [c.mux(a_greater, f, t) for t, f in zip(a, b)]


def absolute_into(c: Circuit, a: Sequence[int]) -> List[int]:
    """Append a two's-complement absolute value (sign bit selects ``-a``)."""
    negated = negate_into(c, a)
    sign = a[-1]
    return [c.mux(sign, n, p) for p, n in zip(a, negated)]


def shift_left_into(c: Circuit, a: Sequence[int], amount: int) -> List[int]:
    """Constant logical left shift: low bits become constant zeros."""
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    width = len(a)
    amount = min(amount, width)
    return [c.constant(0) for _ in range(amount)] + list(a)[: width - amount]


def shift_right_into(c: Circuit, a: Sequence[int], amount: int) -> List[int]:
    """Constant logical right shift: high bits become constant zeros."""
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    width = len(a)
    amount = min(amount, width)
    return list(a)[amount:] + [c.constant(0) for _ in range(amount)]


def _require_width(width: int) -> None:
    if width <= 0:
        raise ValueError("width must be positive")


@lru_cache(maxsize=None)
def adder_netlist(width: int) -> Circuit:
    """Ripple-carry adder: inputs ``a``/``b``, output ``sum`` (``width + 1`` bits)."""
    _require_width(width)
    c = Circuit(f"add{width}")
    a = c.inputs("a", width)
    b = c.inputs("b", width)
    c.output("sum", ripple_add_into(c, a, b))
    return c


@lru_cache(maxsize=None)
def negate_netlist(width: int) -> Circuit:
    """Two's-complement negation: input ``a``, output ``neg`` (same width)."""
    _require_width(width)
    c = Circuit(f"neg{width}")
    a = c.inputs("a", width)
    c.output("neg", negate_into(c, a))
    return c


@lru_cache(maxsize=None)
def subtractor_netlist(width: int) -> Circuit:
    """Two's-complement subtraction ``a - b`` truncated to ``width`` bits."""
    _require_width(width)
    c = Circuit(f"sub{width}")
    a = c.inputs("a", width)
    b = c.inputs("b", width)
    c.output("diff", ripple_add_into(c, a, negate_into(c, b))[:width])
    return c


@lru_cache(maxsize=None)
def equal_netlist(width: int) -> Circuit:
    """Equality comparator: inputs ``a``/``b``, one-bit output ``eq``."""
    _require_width(width)
    c = Circuit(f"eq{width}")
    a = c.inputs("a", width)
    b = c.inputs("b", width)
    c.output("eq", [equal_into(c, a, b)])
    return c


@lru_cache(maxsize=None)
def greater_than_netlist(width: int) -> Circuit:
    """Unsigned ``a > b`` comparator (bit-serial, LSB to MSB), output ``gt``."""
    _require_width(width)
    c = Circuit(f"gt{width}")
    a = c.inputs("a", width)
    b = c.inputs("b", width)
    c.output("gt", [greater_than_into(c, a, b)])
    return c


@lru_cache(maxsize=None)
def select_netlist(width: int) -> Circuit:
    """Vector multiplexer: one-bit ``cond`` picks ``if_true`` or ``if_false``."""
    _require_width(width)
    c = Circuit(f"select{width}")
    cond = c.inputs("cond", 1)[0]
    if_true = c.inputs("if_true", width)
    if_false = c.inputs("if_false", width)
    c.output("out", [c.mux(cond, t, f) for t, f in zip(if_true, if_false)])
    return c


@lru_cache(maxsize=None)
def maximum_netlist(width: int) -> Circuit:
    """Unsigned maximum of ``a`` and ``b`` (comparator feeding a multiplexer)."""
    _require_width(width)
    c = Circuit(f"max{width}")
    a = c.inputs("a", width)
    b = c.inputs("b", width)
    c.output("max", maximum_into(c, a, b))
    return c


@lru_cache(maxsize=None)
def minimum_netlist(width: int) -> Circuit:
    """Unsigned minimum of ``a`` and ``b``, output ``min`` (same width)."""
    _require_width(width)
    c = Circuit(f"min{width}")
    a = c.inputs("a", width)
    b = c.inputs("b", width)
    c.output("min", minimum_into(c, a, b))
    return c


@lru_cache(maxsize=None)
def multiplier_netlist(width: int) -> Circuit:
    """Shift-and-add multiplier ``a * b`` wrapping to ``width`` bits, output ``prod``."""
    _require_width(width)
    c = Circuit(f"mul{width}")
    a = c.inputs("a", width)
    b = c.inputs("b", width)
    c.output("prod", multiply_into(c, a, b))
    return c


@lru_cache(maxsize=None)
def absolute_netlist(width: int) -> Circuit:
    """Two's-complement absolute value of ``a``, output ``abs`` (same width)."""
    _require_width(width)
    c = Circuit(f"abs{width}")
    a = c.inputs("a", width)
    c.output("abs", absolute_into(c, a))
    return c


@lru_cache(maxsize=None)
def shift_left_netlist(width: int, amount: int) -> Circuit:
    """Constant logical left shift ``a << amount`` (zero fill), output ``shifted``."""
    _require_width(width)
    c = Circuit(f"shl{width}_{amount}")
    a = c.inputs("a", width)
    c.output("shifted", shift_left_into(c, a, amount))
    return c


@lru_cache(maxsize=None)
def shift_right_netlist(width: int, amount: int) -> Circuit:
    """Constant logical right shift ``a >> amount`` (zero fill), output ``shifted``."""
    _require_width(width)
    c = Circuit(f"shr{width}_{amount}")
    a = c.inputs("a", width)
    c.output("shifted", shift_right_into(c, a, amount))
    return c

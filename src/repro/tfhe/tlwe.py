"""Ring TLWE (TRLWE) encryption.

A TLWE sample in the ring setting encrypts a polynomial message
``mu ∈ T_N[X]`` under a key of ``k`` binary polynomials: the sample is
``(a_1..a_k, b)`` with ``b = Σ a_j·s_j + mu + e``.  The paper fixes ``k = 1``
so a sample is a pair of torus polynomials (a Ring-LWE sample).

The blind-rotation accumulator ``ACC`` of Algorithm 1 is a TLWE sample, and
the final ``SampleExtract`` step turns its constant coefficient into a scalar
LWE sample under the *extracted* key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.tfhe.lwe import LweBatch, LweKey, LweSample
from repro.tfhe.params import LweParams, TlweParams
from repro.tfhe.polynomial import (
    poly_add,
    poly_mul_by_xk,
    poly_mul_by_xk_minus_one,
    poly_mul_by_xk_minus_one_powers,
    poly_mul_by_xk_powers,
    poly_sub,
)
from repro.tfhe.torus import gaussian_torus32, torus32_from_int64, uniform_torus32
from repro.tfhe.transform import NegacyclicTransform
from repro.utils.rng import SeedLike, make_rng


@dataclass
class TlweSample:
    """A ring TLWE ciphertext: ``k`` mask polynomials plus the body polynomial.

    ``data`` has shape ``(k + 1, N)``; rows ``0..k-1`` are the mask ``a`` and
    row ``k`` is the body ``b``.
    """

    data: np.ndarray  # int32[(k+1), N]

    @property
    def mask_count(self) -> int:
        return int(self.data.shape[0]) - 1

    @property
    def degree(self) -> int:
        return int(self.data.shape[1])

    @property
    def a(self) -> np.ndarray:
        return self.data[:-1]

    @property
    def b(self) -> np.ndarray:
        return self.data[-1]

    def copy(self) -> "TlweSample":
        return TlweSample(self.data.copy())


@dataclass
class TlweBatch:
    """A batch of ``B`` ring TLWE ciphertexts: ``data`` has shape ``(B, k+1, N)``.

    The batched blind rotation carries one accumulator per in-flight
    bootstrapping; all batched operations are bit-identical to looping the
    scalar :class:`TlweSample` path over the rows.
    """

    data: np.ndarray  # int32[B, (k+1), N]

    @property
    def batch_size(self) -> int:
        return int(self.data.shape[0])

    @property
    def mask_count(self) -> int:
        return int(self.data.shape[1]) - 1

    @property
    def degree(self) -> int:
        return int(self.data.shape[2])

    def __len__(self) -> int:
        return self.batch_size

    def __getitem__(self, index: int) -> TlweSample:
        return TlweSample(self.data[index].copy())

    def copy(self) -> "TlweBatch":
        return TlweBatch(self.data.copy())

    @classmethod
    def from_samples(cls, samples) -> "TlweBatch":
        samples = list(samples)
        if not samples:
            raise ValueError("cannot build an empty batch")
        return cls(np.stack([s.data for s in samples]).astype(np.int32))

    def to_samples(self) -> List[TlweSample]:
        return [self[i] for i in range(self.batch_size)]


@dataclass
class TlweKey:
    """A ring TLWE secret key: ``k`` binary polynomials."""

    params: TlweParams
    key: np.ndarray  # int32[k, N] with entries in {0, 1}

    @property
    def degree(self) -> int:
        return int(self.key.shape[1])

    @property
    def mask_count(self) -> int:
        return int(self.key.shape[0])


def tlwe_key_generate(params: TlweParams, rng: SeedLike = None) -> TlweKey:
    """Sample a ring key of ``k`` uniform binary polynomials."""
    rng = make_rng(rng)
    key = rng.integers(
        0, 2, size=(params.mask_count, params.degree), dtype=np.int64
    ).astype(np.int32)
    return TlweKey(params=params, key=key)


def tlwe_zero(params: TlweParams) -> TlweSample:
    """The all-zero (trivial, noiseless) sample."""
    return TlweSample(np.zeros((params.mask_count + 1, params.degree), dtype=np.int32))


def tlwe_trivial(message: np.ndarray, mask_count: int) -> TlweSample:
    """Trivial (noiseless, keyless) encryption of a polynomial message."""
    message = np.asarray(message, dtype=np.int32)
    data = np.zeros((mask_count + 1, message.shape[0]), dtype=np.int32)
    data[-1] = message
    return TlweSample(data)


def tlwe_encrypt(
    key: TlweKey,
    message: np.ndarray,
    transform: NegacyclicTransform,
    noise_stddev: float | None = None,
    rng: SeedLike = None,
) -> TlweSample:
    """Encrypt a torus polynomial message."""
    rng = make_rng(rng)
    params = key.params
    stddev = params.noise_stddev if noise_stddev is None else noise_stddev
    data = np.zeros((params.mask_count + 1, params.degree), dtype=np.int32)
    body = gaussian_torus32(stddev, size=params.degree, rng=rng).astype(np.int64)
    for j in range(params.mask_count):
        a_j = uniform_torus32(params.degree, rng)
        data[j] = a_j
        body += transform.multiply(key.key[j], a_j).astype(np.int64)
    body += np.asarray(message, dtype=np.int32).astype(np.int64)
    data[-1] = torus32_from_int64(body)
    return TlweSample(data)


def tlwe_phase(
    key: TlweKey, sample: TlweSample, transform: NegacyclicTransform
) -> np.ndarray:
    """The phase polynomial ``b - Σ a_j·s_j`` (message plus noise)."""
    phase = sample.b.astype(np.int64)
    for j in range(key.mask_count):
        phase -= transform.multiply(key.key[j], sample.a[j]).astype(np.int64)
    return torus32_from_int64(phase)


def tlwe_add(x: TlweSample, y: TlweSample) -> TlweSample:
    """Homomorphic addition of two ring samples."""
    return TlweSample(poly_add(x.data, y.data))


def tlwe_sub(x: TlweSample, y: TlweSample) -> TlweSample:
    """Homomorphic subtraction of two ring samples."""
    return TlweSample(poly_sub(x.data, y.data))


def tlwe_rotate(sample: TlweSample, power: int) -> TlweSample:
    """Multiply every polynomial of the sample by ``X^power`` (mod ``X^N+1``).

    Rotating a sample rotates its message; this is the ``X^{b̄}·(0, testv)``
    initialisation and the per-iteration rotation of Algorithm 1.  The whole
    ``(k+1, N)`` stack rotates in one vectorised call (bit-identical to
    rotating each row on its own — :func:`poly_mul_by_xk` is batch-aware).
    """
    return TlweSample(poly_mul_by_xk(sample.data, power))


def tlwe_mul_by_xk_minus_one(sample: TlweSample, power: int) -> TlweSample:
    """Compute ``(X^power − 1) · sample`` in one fused gather-subtract.

    This is the CMux difference of a blind-rotation step
    (``X^{ā_i}·ACC − ACC``) without materialising the rotated accumulator —
    bit-identical to ``tlwe_sub(tlwe_rotate(sample, power), sample)``.
    """
    return TlweSample(poly_mul_by_xk_minus_one(sample.data, power))


def tlwe_extract_lwe_key(key: TlweKey) -> LweKey:
    """Extract the scalar LWE key corresponding to a ring key (KeyExtract).

    The extracted key is simply the concatenation of the polynomial key
    coefficients; it has dimension ``k·N``.
    """
    flat = key.key.reshape(-1).astype(np.int32)
    params = LweParams(
        dimension=int(flat.shape[0]), noise_stddev=key.params.noise_stddev
    )
    return LweKey(params=params, key=flat)


def tlwe_sample_extract(sample: TlweSample, index: int = 0) -> LweSample:
    """Extract the coefficient ``index`` of the message as a scalar LWE sample.

    This is the ``SampleExtract`` step of Algorithm 1: the constant (or
    ``index``-th) coefficient of the accumulator's message becomes a scalar
    LWE ciphertext under the extracted key.
    """
    k = sample.mask_count
    degree = sample.degree
    if not 0 <= index < degree:
        raise ValueError("extraction index out of range")
    a = np.zeros(k * degree, dtype=np.int32)
    for j in range(k):
        row = sample.a[j].astype(np.int64)
        extracted = np.empty(degree, dtype=np.int64)
        # coefficient of s_j[t] in the phase of coefficient `index` is
        # a_j[index - t] for t <= index and -a_j[N + index - t] for t > index.
        extracted[: index + 1] = row[index::-1]
        if index + 1 < degree:
            extracted[index + 1 :] = -row[:index:-1]
        a[j * degree : (j + 1) * degree] = torus32_from_int64(extracted)
    return LweSample(a=a, b=np.int32(sample.b[index]))


# --------------------------------------------------------------------------- #
# batched operations                                                          #
# --------------------------------------------------------------------------- #


def tlwe_batch_trivial(message: np.ndarray, mask_count: int, batch_size: int) -> TlweBatch:
    """A batch of trivial encryptions of ``message`` (shape ``(N,)`` or ``(B, N)``)."""
    if batch_size <= 0:
        raise ValueError("batch size must be positive")
    message = np.asarray(message, dtype=np.int32)
    degree = message.shape[-1]
    data = np.zeros((batch_size, mask_count + 1, degree), dtype=np.int32)
    data[:, -1, :] = message
    return TlweBatch(data)


def tlwe_batch_add(x: TlweBatch, y: TlweBatch) -> TlweBatch:
    """Elementwise homomorphic addition of two batches."""
    return TlweBatch(poly_add(x.data, y.data))


def tlwe_batch_sub(x: TlweBatch, y: TlweBatch) -> TlweBatch:
    """Elementwise homomorphic subtraction of two batches."""
    return TlweBatch(poly_sub(x.data, y.data))


def tlwe_batch_rotate(batch: TlweBatch, powers: np.ndarray) -> TlweBatch:
    """Multiply ciphertext ``i`` of the batch by ``X^{powers[i]}`` (mod ``X^N+1``).

    Unlike :func:`tlwe_rotate` every ciphertext gets its *own* power — this is
    the per-gate rotation amount of a batched blind rotation.  Bit-identical
    to rotating each sample separately.
    """
    powers = np.asarray(powers, dtype=np.int64)
    if powers.shape != (batch.batch_size,):
        raise ValueError("one rotation power per batched ciphertext is required")
    rotated = poly_mul_by_xk_powers(batch.data, powers[:, None])
    return TlweBatch(rotated.astype(np.int32))


def tlwe_batch_mul_by_xk_minus_one(batch: TlweBatch, powers: np.ndarray) -> TlweBatch:
    """Compute ``(X^{powers[i]} − 1) · batch[i]`` for a whole batch, fused.

    The batched CMux difference of the blind rotation: every ciphertext uses
    its own power, rows whose power reduces to zero mod ``2N`` come out
    exactly zero, and nothing rotates through a materialised intermediate —
    bit-identical to ``tlwe_batch_sub(tlwe_batch_rotate(batch, powers),
    batch)``.
    """
    powers = np.asarray(powers, dtype=np.int64)
    if powers.shape != (batch.batch_size,):
        raise ValueError("one rotation power per batched ciphertext is required")
    return TlweBatch(poly_mul_by_xk_minus_one_powers(batch.data, powers[:, None]))


def tlwe_batch_sample_extract(batch: TlweBatch, index: int = 0) -> LweBatch:
    """Vectorised ``SampleExtract``: coefficient ``index`` of every ciphertext.

    All ``k`` mask polynomials of every batched ciphertext extract in one
    vectorised pass (no per-``k`` Python loop); bit-identical to looping
    :func:`tlwe_sample_extract` over the rows.
    """
    k = batch.mask_count
    degree = batch.degree
    if not 0 <= index < degree:
        raise ValueError("extraction index out of range")
    rows = batch.data[:, :k, :].astype(np.int64)  # (B, k, N)
    extracted = np.empty((batch.batch_size, k, degree), dtype=np.int64)
    extracted[..., : index + 1] = rows[..., index::-1]
    if index + 1 < degree:
        extracted[..., index + 1 :] = -rows[..., :index:-1]
    a = torus32_from_int64(extracted).reshape(batch.batch_size, k * degree)
    return LweBatch(a=a, b=batch.data[:, -1, index].copy())

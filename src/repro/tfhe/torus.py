"""Torus arithmetic.

TFHE is defined over the real torus ``T = R/Z`` (real numbers modulo 1).  Like
the reference TFHE library, the implementation rescales torus elements by
``2^32`` and stores them as 32-bit integers, so every addition and subtraction
implicitly performs the modulo-1 reduction through native integer wrap-around
(Section 2, "Torus Implementation" in the paper).

A torus element ``t`` in ``[-1/2, 1/2)`` is represented by the signed 32-bit
integer ``round(t * 2^32)``.  Messages of a `M`-ary plaintext space are placed
at the ``M`` evenly spaced torus points ``i/M``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.utils.rng import SeedLike, make_rng

#: Number of bits used to represent a torus element.
TORUS_BITS = 32
#: Scale factor mapping the real torus onto 32-bit integers.
TORUS_SCALE = 2**TORUS_BITS

Torus32 = np.int32

ArrayLike = Union[int, float, np.ndarray]


def double_to_torus32(value: ArrayLike) -> np.ndarray:
    """Map real numbers onto the discretised torus (int32 with wrap-around).

    Only the fractional part of ``value`` matters: the real torus is the reals
    modulo 1, and the scaling by ``2^32`` makes the reduction implicit in the
    integer wrap-around.
    """
    scaled = np.round(np.asarray(value, dtype=np.float64) * TORUS_SCALE)
    return np.asarray(scaled % TORUS_SCALE, dtype=np.uint32).astype(np.int32)


def torus32_to_double(value: ArrayLike) -> np.ndarray:
    """Map discretised torus elements back to reals in ``[-1/2, 1/2)``."""
    return np.asarray(value, dtype=np.int32).astype(np.float64) / TORUS_SCALE


def torus32_from_int64(value: ArrayLike) -> np.ndarray:
    """Wrap arbitrary (64-bit or Python) integers onto the 32-bit torus.

    The final step reinterprets the uint32 buffer as int32 (a free view — the
    two's-complement bit pattern is already the torus representative) instead
    of paying a second cast pass.
    """
    return (np.asarray(value, dtype=np.int64) & 0xFFFFFFFF).astype(np.uint32).view(np.int32)


def modswitch_to_torus32(message: ArrayLike, space: int) -> np.ndarray:
    """Encode ``message`` from a ``space``-ary plaintext space onto the torus.

    The plaintext ``mu`` is mapped to the torus point ``mu / space``; e.g. for
    TFHE gate bootstrapping ``space`` is 8 and the two Boolean messages sit at
    ``±1/8``.
    """
    message = np.asarray(message, dtype=np.int64)
    return torus32_from_int64(message * (TORUS_SCALE // space))


def modswitch_from_torus32(phase: ArrayLike, space: int) -> np.ndarray:
    """Decode a torus phase back to the nearest point of a ``space``-ary space."""
    phase = np.asarray(phase, dtype=np.int32).astype(np.int64) & 0xFFFFFFFF
    interval = TORUS_SCALE // space
    return ((phase + interval // 2) // interval % space).astype(np.int64)


def torus32_add(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Add two torus elements (wrap-around int32 addition)."""
    total = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return torus32_from_int64(total)


def torus32_sub(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Subtract two torus elements (wrap-around int32 subtraction)."""
    diff = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    return torus32_from_int64(diff)


def torus32_scale(scalar: ArrayLike, value: ArrayLike) -> np.ndarray:
    """Multiply torus elements by (signed) integers, with wrap-around."""
    product = np.asarray(scalar, dtype=np.int64) * np.asarray(value, dtype=np.int64)
    return torus32_from_int64(product)


def approx_phase(phase: ArrayLike, message_bits: int) -> np.ndarray:
    """Round a torus phase to the closest multiple of ``2^-message_bits``.

    Used by the gadget-decomposition offset computation and by decryption: the
    noise below the message resolution is rounded away.
    """
    phase = np.asarray(phase, dtype=np.int32).astype(np.int64)
    interval = 1 << (TORUS_BITS - message_bits)
    rounded = ((phase + interval // 2) // interval) * interval
    return torus32_from_int64(rounded)


def gaussian_torus32(
    stddev: float, size, rng: SeedLike = None
) -> np.ndarray:
    """Sample discretised-Gaussian torus noise with standard deviation ``stddev``.

    The standard deviation is expressed on the real torus (e.g. ``2^-15``); the
    sample is rounded onto the 32-bit discretisation.  This mirrors the
    ``gaussian32`` routine of the TFHE library.
    """
    rng = make_rng(rng)
    noise = rng.normal(loc=0.0, scale=stddev, size=size)
    return double_to_torus32(noise)


def uniform_torus32(size, rng: SeedLike = None) -> np.ndarray:
    """Sample uniformly random torus elements (the mask ``a`` of LWE samples)."""
    rng = make_rng(rng)
    return rng.integers(
        low=-(2**31), high=2**31, size=size, dtype=np.int64
    ).astype(np.int32)


def torus_distance(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Absolute distance on the real torus between two int32 torus elements.

    The distance is the length of the shorter arc, expressed as a real number
    in ``[0, 1/2]``.  Used by noise-measurement tests.
    """
    diff = torus32_sub(a, b)
    return np.abs(torus32_to_double(diff))

"""Analytic noise model (Section 4.3 "Error and Noise", Table 3).

Every homomorphic operation adds noise to the ciphertext; a gate decrypts
correctly as long as the accumulated noise stays below the decision margin of
the plaintext encoding (``1/16`` of the torus for gate bootstrapping, since
the post-gate phases sit at odd multiples of ``1/8`` and the decision is a
sign test).  This module propagates noise *variances* through a bootstrapped
gate, reproducing:

* the per-source comparison of Table 3 (external product, rounding,
  bootstrapping-key and FFT/IFFT noise, as functions of the BKU factor ``m``),
* the decryption-failure-probability claims of Section 4.3 (38-bit DVQTFs are
  enough at small ``m``; 64-bit DVQTFs are needed once the exponentially
  growing bootstrapping-key noise eats the margin at ``m = 5``),

using the standard TFHE variance bookkeeping (Chillotti et al. 2020) extended
with the BKU bundle construction of Figure 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.tfhe.params import DigitEncoding, TFHEParameters

#: Decision margin of gate bootstrapping on the real torus: phases sit at odd
#: multiples of 1/8, the bootstrapping test vector flips at 0 and +-1/2, so the
#: closest failure boundary is 1/16 away after the linear gate combination is
#: taken into account (the XOR-style gates scale inputs by two, which the
#: per-gate margin below accounts for).
GATE_DECISION_MARGIN = 1.0 / 16.0


def digit_decision_margin(encoding: DigitEncoding) -> float:
    """Decision margin of a programmable bootstrap over ``2P`` torus slots.

    Digit plaintexts sit at multiples of ``1/(2P)``; the blind rotation reads
    the wrong test-vector slot once the accumulated phase error exceeds half a
    slot, i.e. ``1/(4P)``.
    """
    return 1.0 / (4.0 * encoding.space)


def _erfc(x: float) -> float:
    return math.erfc(x)


@dataclass(frozen=True)
class NoiseBudget:
    """Variance contributions of one bootstrapped TFHE gate."""

    input_variance: float
    modswitch_rounding_variance: float
    blind_rotate_variance: float
    fft_variance: float
    keyswitch_variance: float

    @property
    def total_variance(self) -> float:
        return (
            self.input_variance
            + self.modswitch_rounding_variance
            + self.blind_rotate_variance
            + self.fft_variance
            + self.keyswitch_variance
        )

    @property
    def total_stddev(self) -> float:
        return math.sqrt(self.total_variance)

    def failure_probability(self, margin: float = GATE_DECISION_MARGIN) -> float:
        """Probability that one gate output decrypts incorrectly."""
        sigma = self.total_stddev
        if sigma == 0:
            return 0.0
        return _erfc(margin / (sigma * math.sqrt(2.0)))

    def expected_failures(self, gates: float, margin: float = GATE_DECISION_MARGIN) -> float:
        """Expected number of failures over ``gates`` evaluated gates."""
        return gates * self.failure_probability(margin)


class TfheNoiseModel:
    """Noise-variance propagation for gate bootstrapping with BKU factor ``m``."""

    def __init__(
        self,
        params: TFHEParameters,
        unroll_factor: int = 1,
        fft_error_stddev: float = 0.0,
    ) -> None:
        if unroll_factor < 1:
            raise ValueError("unroll factor must be >= 1")
        self.params = params
        self.unroll_factor = unroll_factor
        #: Standard deviation (on the real torus) of the polynomial-product
        #: error of the transform engine, per backward transform.  Zero for an
        #: exact engine; measured values come from
        #: :func:`repro.core.fft_error.polynomial_product_error`.
        self.fft_error_stddev = fft_error_stddev

    # -- individual sources -------------------------------------------------
    @property
    def iterations(self) -> int:
        """Number of external products per bootstrapping: ``⌈n/m⌉``."""
        return -(-self.params.n // self.unroll_factor)

    @property
    def keys_per_group(self) -> int:
        """TGSW keys per BKU group: ``2^m − 1`` (Figure 5)."""
        return (1 << self.unroll_factor) - 1

    def fresh_lwe_variance(self) -> float:
        """Variance of a freshly encrypted LWE sample."""
        return self.params.lwe.noise_stddev**2

    def gate_input_variance(self, operand_count: int = 2, scale: int = 1) -> float:
        """Variance of the linear combination entering the bootstrapping.

        ``operand_count`` fresh ciphertexts scaled by ``scale`` (2 for the
        XOR/XNOR gates, 1 otherwise).
        """
        return operand_count * (scale**2) * self.fresh_lwe_variance()

    def modswitch_rounding_variance(self) -> float:
        """Variance of the rounding step (Algorithm 1 line 2).

        Each of the ``n`` mask coefficients is rounded to a multiple of
        ``1/2N``; the rounding errors are uniform in ``±1/(4N)`` and only the
        coefficients with ``s_i = 1`` (half of them on average) propagate.
        Grouping ``m`` coefficients per external product does not change the
        number of roundings, but the *accumulated* rounding error that the
        test-vector rotation sees is one per external product, which is the
        ``RO/m`` scaling the paper lists in Table 3.
        """
        n = self.params.n
        N = self.params.N
        per_coefficient = (1.0 / (4.0 * N)) ** 2 / 3.0
        return (n / 2.0 + 1.0) * per_coefficient

    def external_product_variance_per_iteration(self) -> float:
        """Noise added by one external product with a bundle of ``2^m − 1`` keys.

        The standard external-product variance has two terms: the TGSW key
        noise amplified by the decomposition digits, and the decomposition
        (gadget) rounding error.  Scaling a key by ``X^e − 1`` doubles its
        noise variance, and the bundle sums ``2^m − 1`` scaled keys — the
        exponential bootstrapping-key term of Table 3.
        """
        p = self.params
        k, l, N = p.k, p.l, p.N
        bg = p.Bg
        # Mean square of a signed decomposition digit, uniform in [-Bg/2, Bg/2).
        digit_ms = (bg**2) / 12.0
        eps = 1.0 / (2.0 * (bg**l))
        sigma_bk_sq = p.tlwe.noise_stddev**2

        key_term = (k + 1) * l * N * digit_ms * sigma_bk_sq
        decomposition_term = (1 + k * N) * (eps**2)
        if self.unroll_factor == 1:
            bundle_keys = 1.0
            scale_factor = 2.0  # CMux / (X^e - 1) scaling of a single key
        else:
            bundle_keys = float(self.keys_per_group)
            scale_factor = 2.0
        return scale_factor * bundle_keys * key_term + decomposition_term

    def blind_rotate_variance(self) -> float:
        """Total blind-rotation noise: iterations × per-iteration noise."""
        return self.iterations * self.external_product_variance_per_iteration()

    def fft_variance(self) -> float:
        """Noise added by approximate FFT/IFFT errors over one bootstrapping.

        Each external product performs ``k + 1`` backward transforms whose
        polynomial-product error has standard deviation ``fft_error_stddev``
        on the torus; the errors accumulate across iterations.
        """
        per_iteration = (self.params.k + 1) * (self.fft_error_stddev**2)
        return self.iterations * per_iteration

    def keyswitch_variance(self) -> float:
        """Noise added by the final key switch."""
        p = self.params
        ks = p.keyswitch
        big_n = p.k * p.N
        # Key-switching key noise: one sample per input bit and digit.
        key_term = big_n * ks.length * (ks.noise_stddev**2)
        # Precision loss of the digit decomposition.
        precision = 2.0 ** (-ks.base_bits * ks.length)
        decomposition_term = big_n * (precision**2) / 12.0
        return key_term + decomposition_term

    # -- aggregate ----------------------------------------------------------
    def gate_budget(self, operand_count: int = 2, scale: int = 1) -> NoiseBudget:
        """The full noise budget of one bootstrapped gate."""
        return NoiseBudget(
            input_variance=0.0,  # the bootstrapping resets the input noise
            modswitch_rounding_variance=self.modswitch_rounding_variance(),
            blind_rotate_variance=self.blind_rotate_variance(),
            fft_variance=self.fft_variance(),
            keyswitch_variance=self.keyswitch_variance(),
        )

    def pre_bootstrap_margin_ok(self, operand_count: int = 2, scale: int = 1) -> bool:
        """Whether the linear combination entering the bootstrap stays decodable."""
        sigma = math.sqrt(
            self.gate_input_variance(operand_count, scale)
            + self.modswitch_rounding_variance()
        )
        return 4.0 * sigma < GATE_DECISION_MARGIN

    # -- programmable bootstrapping -----------------------------------------
    def digit_budget(self, encoding: DigitEncoding) -> NoiseBudget:
        """Noise budget of one programmable bootstrap of a digit ciphertext.

        The sources are identical to the gate budget — the blind rotation does
        not care what the test vector encodes — but the budget is evaluated
        against the narrower ``1/(4P)`` digit margin by the callers.
        """
        return self.gate_budget()

    def digit_margin_ok(self, encoding: DigitEncoding, sigmas: float = 4.0) -> bool:
        """Whether a freshly bootstrapped digit stays ``sigmas``·σ inside margin.

        The decoding-relevant error is the phase error *entering* the next
        blind rotation: the residual bootstrap output noise plus the mod-switch
        rounding of that rotation.
        """
        budget = self.digit_budget(encoding)
        sigma = math.sqrt(
            budget.total_variance + self.modswitch_rounding_variance()
        )
        return sigmas * sigma < digit_decision_margin(encoding)

    def digit_failure_probability(self, encoding: DigitEncoding) -> float:
        """Per-bootstrap probability of decoding the wrong digit slot."""
        budget = self.digit_budget(encoding)
        sigma = math.sqrt(
            budget.total_variance + self.modswitch_rounding_variance()
        )
        if sigma == 0:
            return 0.0
        return _erfc(digit_decision_margin(encoding) / (sigma * math.sqrt(2.0)))


    # -- Table 3 ------------------------------------------------------------
    def table3_relative_metrics(self) -> Dict[str, float]:
        """The paper's Table 3 scalings, normalised to the ``m = 1`` baseline.

        Returns the relative external-product noise (``δ/m``), relative
        rounding noise (``RO/m``), bootstrapping-key count per group
        (``2^m − 1``) and the per-product FFT error level in dB.
        """
        m = self.unroll_factor
        fft_db = (
            20.0 * math.log10(self.fft_error_stddev)
            if self.fft_error_stddev > 0
            else float("-inf")
        )
        return {
            "external_product_noise_scale": 1.0 / m,
            "rounding_noise_scale": 1.0 / m,
            "bootstrapping_keys_per_group": float(self.keys_per_group),
            "fft_error_db": fft_db,
        }


def validate_digit_encoding(
    params: TFHEParameters,
    encoding: DigitEncoding,
    unroll_factor: int = 1,
    sigmas: float = 4.0,
) -> None:
    """Raise :class:`ValueError` unless ``encoding`` fits ``params``.

    Two checks, in order: the structural fit (``2P`` torus slices within the
    parameter set's rated ``message_space``, digit slots dividing ``N`` —
    :meth:`DigitEncoding.validate_for`), then the analytic noise margin — a
    freshly bootstrapped digit plus the next blind rotation's mod-switch
    rounding must stay ``sigmas``·σ inside the ``1/(4P)`` digit decision
    margin under :class:`TfheNoiseModel`.  This is the single entry point the
    parameter tables and the property tests use to rate an encoding.
    """
    encoding.validate_for(params)
    model = TfheNoiseModel(params, unroll_factor=unroll_factor)
    if not model.digit_margin_ok(encoding, sigmas=sigmas):
        budget = model.digit_budget(encoding)
        sigma = math.sqrt(
            budget.total_variance + model.modswitch_rounding_variance()
        )
        raise ValueError(
            f"digit encoding {encoding.message_bits}+{encoding.carry_bits} "
            f"bits does not fit {params.name}: {sigmas:.0f} sigma noise "
            f"({sigmas * sigma:.2e}) exceeds the 1/(4P) decision margin "
            f"({digit_decision_margin(encoding):.2e}) at m={unroll_factor}"
        )


def max_safe_fft_error(params: TFHEParameters, unroll_factor: int, target_failures: float = 1.0, gates: float = 1.0e8) -> float:
    """Largest per-product FFT error stddev keeping < ``target_failures`` in ``gates``.

    Used to reproduce the Section 4.3 argument: the margin left for FFT error
    shrinks as ``m`` grows because the bootstrapping-key noise grows
    exponentially, which is why 38-bit DVQTFs are enough at ``m = 2`` but
    64-bit DVQTFs are needed at ``m = 5``.
    """
    model = TfheNoiseModel(params, unroll_factor, fft_error_stddev=0.0)
    base_variance = model.gate_budget().total_variance

    # Target per-gate failure probability.
    p_target = target_failures / gates
    # Invert erfc(margin / (sigma sqrt 2)) = p  ->  sigma = margin / (sqrt2 * erfcinv(p))
    # Use a simple bisection on sigma to avoid depending on scipy here.
    margin = GATE_DECISION_MARGIN

    def failure(sigma_total: float) -> float:
        return _erfc(margin / (sigma_total * math.sqrt(2.0)))

    low, high = math.sqrt(base_variance), margin
    if failure(low) > p_target:
        return 0.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if failure(mid) > p_target:
            high = mid
        else:
            low = mid
    sigma_total_max = low
    allowed_fft_variance = sigma_total_max**2 - base_variance
    if allowed_fft_variance <= 0:
        return 0.0
    iterations = model.iterations
    per_product = allowed_fft_variance / (iterations * (params.k + 1))
    return math.sqrt(per_product)

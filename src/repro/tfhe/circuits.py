"""Reusable encrypted-circuit building blocks.

The paper motivates MATCHA with gate-level encrypted computing (e.g. the
TFHE RISC-V processor runs thousands of bootstrapped gates per instruction).
This module packages the standard combinational blocks a downstream user
needs to build such workloads on top of :class:`repro.tfhe.gates.TFHEGateEvaluator`:
integer encode/decode helpers, a ripple-carry adder/subtractor, comparators,
a multiplexer over bit vectors and an equality test.

All functions take and return lists of LWE ciphertexts ordered LSB first, so
they compose freely; every gate they emit is a bootstrapped TFHE gate, which
keeps the depth unlimited.

The blocks are polymorphic over the evaluator: pass a
:class:`repro.tfhe.gates.TFHEGateEvaluator` and lists of scalar
:class:`LweSample` bits to process one word, or a
:class:`repro.tfhe.gates.BatchGateEvaluator` and lists of
:class:`repro.tfhe.lwe.LweBatch` *bit planes* (plane ``i`` holds bit ``i`` of
every word in the batch) to process ``batch_size`` independent words with the
same number of — now batched — gate evaluations.  Use
:func:`encrypt_integers` / :func:`decrypt_integers` to move between integer
lists and bit planes.

Since PR 2 each helper is a thin wrapper over the netlist subsystem: the
block is built once per width as a :class:`repro.tfhe.netlist.Circuit`
(memoised) and evaluated gate by gate with
:func:`repro.tfhe.executor.execute`, which emits exactly the historical gate
sequence — outputs are bit-identical to the pre-netlist implementation.  To
run the *same* circuits level-parallel (one batched bootstrapping per
dependency level instead of per gate), hand the netlist to
:class:`repro.tfhe.executor.CircuitExecutor` instead.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.tfhe import netlist
from repro.tfhe.executor import execute
from repro.tfhe.gates import (
    TFHEGateEvaluator,
    decrypt_bit_batch,
    decrypt_bits,
    encrypt_bit_batch,
    encrypt_bits,
)
from repro.tfhe.keys import TFHESecretKey
from repro.tfhe.lwe import LweBatch, LweSample
from repro.utils.rng import SeedLike, make_rng


def _as_evaluator(evaluator):
    """Accept an evaluator or an ``FheContext`` (coerced to its scalar evaluator).

    Duck-typed on the context surface (``evaluator()`` + ``rotator``) so this
    module stays independent of :mod:`repro.runtime`; gate evaluators pass
    through unchanged, so batched evaluators keep working too.  ``rotator``
    is probed on the *type* — it is a lazy property and a plain ``hasattr``
    on the instance would build the spectrum cache as a side effect.
    """
    if hasattr(evaluator, "gate"):
        return evaluator
    if hasattr(type(evaluator), "evaluator") and hasattr(type(evaluator), "rotator"):
        return evaluator.evaluator()
    raise TypeError(
        f"expected a gate evaluator or an FheContext, got {type(evaluator).__name__}"
    )


def int_to_bits(value: int, width: int) -> List[int]:
    """Two's-complement / unsigned bits of ``value``, LSB first."""
    if width <= 0:
        raise ValueError("width must be positive")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Reassemble an unsigned integer from LSB-first bits."""
    return sum(int(bit) << i for i, bit in enumerate(bits))


def encrypt_integer(
    secret: TFHESecretKey, value: int, width: int, rng: SeedLike = None
) -> List[LweSample]:
    """Encrypt an unsigned integer as ``width`` gate-bootstrapping ciphertexts."""
    return encrypt_bits(secret, int_to_bits(value, width), rng)


def decrypt_integer(secret: TFHESecretKey, bits: Sequence[LweSample]) -> int:
    """Decrypt an encrypted integer produced by :func:`encrypt_integer`."""
    return bits_to_int(decrypt_bits(secret, list(bits)))


def encrypt_integers(
    secret: TFHESecretKey, values: Sequence[int], width: int, rng: SeedLike = None
) -> List[LweBatch]:
    """Encrypt a list of unsigned integers as ``width`` LSB-first *bit planes*.

    Plane ``i`` is an :class:`LweBatch` whose row ``j`` encrypts bit ``i`` of
    ``values[j]`` — the layout the batched circuit blocks consume: feeding the
    planes to :func:`add` with a ``BatchGateEvaluator`` adds all ``len(values)``
    pairs of integers at once.
    """
    if not values:
        raise ValueError("at least one value is required")
    rng = make_rng(rng)
    bit_rows = [int_to_bits(int(v), width) for v in values]
    return [
        encrypt_bit_batch(secret, [row[i] for row in bit_rows], rng)
        for i in range(width)
    ]


def decrypt_integers(secret: TFHESecretKey, planes: Sequence[LweBatch]) -> List[int]:
    """Decrypt LSB-first bit planes back to one integer per batch row."""
    plane_bits = [decrypt_bit_batch(secret, plane) for plane in planes]
    batch = len(plane_bits[0])
    return [bits_to_int([plane[j] for plane in plane_bits]) for j in range(batch)]


def _check_widths(a: Sequence[LweSample], b: Sequence[LweSample]) -> None:
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    if not a:
        raise ValueError("operands must have at least one bit")


def full_adder(
    evaluator: TFHEGateEvaluator, a: LweSample, b: LweSample, carry: LweSample
) -> Tuple[LweSample, LweSample]:
    """One full-adder stage; returns ``(sum, carry_out)`` (5 bootstrapped gates)."""
    evaluator = _as_evaluator(evaluator)
    a_xor_b = evaluator.xor(a, b)
    total = evaluator.xor(a_xor_b, carry)
    carry_out = evaluator.or_(evaluator.and_(a, b), evaluator.and_(a_xor_b, carry))
    return total, carry_out


def add(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> List[LweSample]:
    """Ripple-carry addition; returns ``width + 1`` bits (the last is the carry)."""
    _check_widths(a, b)
    circuit = netlist.adder_netlist(len(a))
    return execute(circuit, _as_evaluator(evaluator), {"a": a, "b": b})["sum"]


def negate(evaluator: TFHEGateEvaluator, a: Sequence[LweSample]) -> List[LweSample]:
    """Two's-complement negation (invert and add one), same width as the input."""
    if not a:
        raise ValueError("operands must have at least one bit")
    circuit = netlist.negate_netlist(len(a))
    return execute(circuit, _as_evaluator(evaluator), {"a": a})["neg"]


def subtract(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> List[LweSample]:
    """Two's-complement subtraction ``a - b`` truncated to the operand width."""
    _check_widths(a, b)
    circuit = netlist.subtractor_netlist(len(a))
    return execute(circuit, _as_evaluator(evaluator), {"a": a, "b": b})["diff"]


def equal(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> LweSample:
    """Encrypted equality test (AND of per-bit XNORs)."""
    _check_widths(a, b)
    circuit = netlist.equal_netlist(len(a))
    return execute(circuit, _as_evaluator(evaluator), {"a": a, "b": b})["eq"][0]


def greater_than(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> LweSample:
    """Encrypted unsigned comparison ``a > b`` (bit-serial, LSB to MSB)."""
    _check_widths(a, b)
    circuit = netlist.greater_than_netlist(len(a))
    return execute(circuit, _as_evaluator(evaluator), {"a": a, "b": b})["gt"][0]


def select(
    evaluator: TFHEGateEvaluator,
    condition: LweSample,
    if_true: Sequence[LweSample],
    if_false: Sequence[LweSample],
) -> List[LweSample]:
    """Vector multiplexer: returns ``if_true`` when ``condition`` encrypts 1."""
    _check_widths(if_true, if_false)
    circuit = netlist.select_netlist(len(if_true))
    return execute(
        circuit,
        _as_evaluator(evaluator),
        {"cond": [condition], "if_true": if_true, "if_false": if_false},
    )["out"]


def maximum(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> List[LweSample]:
    """Encrypted unsigned maximum of two integers."""
    _check_widths(a, b)
    circuit = netlist.maximum_netlist(len(a))
    return execute(circuit, _as_evaluator(evaluator), {"a": a, "b": b})["max"]

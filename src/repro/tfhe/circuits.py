"""Reusable encrypted-circuit building blocks.

The paper motivates MATCHA with gate-level encrypted computing (e.g. the
TFHE RISC-V processor runs thousands of bootstrapped gates per instruction).
This module packages the standard combinational blocks a downstream user
needs to build such workloads on top of :class:`repro.tfhe.gates.TFHEGateEvaluator`:
integer encode/decode helpers, a ripple-carry adder/subtractor, comparators,
a multiplexer over bit vectors and an equality test.

All functions take and return lists of LWE ciphertexts ordered LSB first, so
they compose freely; every gate they emit is a bootstrapped TFHE gate, which
keeps the depth unlimited.

The blocks are polymorphic over the evaluator: pass a
:class:`repro.tfhe.gates.TFHEGateEvaluator` and lists of scalar
:class:`LweSample` bits to process one word, or a
:class:`repro.tfhe.gates.BatchGateEvaluator` and lists of
:class:`repro.tfhe.lwe.LweBatch` *bit planes* (plane ``i`` holds bit ``i`` of
every word in the batch) to process ``batch_size`` independent words with the
same number of — now batched — gate evaluations.  Use
:func:`encrypt_integers` / :func:`decrypt_integers` to move between integer
lists and bit planes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.tfhe.gates import (
    TFHEGateEvaluator,
    decrypt_bit_batch,
    decrypt_bits,
    encrypt_bit_batch,
    encrypt_bits,
)
from repro.tfhe.keys import TFHESecretKey
from repro.tfhe.lwe import LweBatch, LweSample
from repro.utils.rng import SeedLike, make_rng


def int_to_bits(value: int, width: int) -> List[int]:
    """Two's-complement / unsigned bits of ``value``, LSB first."""
    if width <= 0:
        raise ValueError("width must be positive")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Reassemble an unsigned integer from LSB-first bits."""
    return sum(int(bit) << i for i, bit in enumerate(bits))


def encrypt_integer(
    secret: TFHESecretKey, value: int, width: int, rng: SeedLike = None
) -> List[LweSample]:
    """Encrypt an unsigned integer as ``width`` gate-bootstrapping ciphertexts."""
    return encrypt_bits(secret, int_to_bits(value, width), rng)


def decrypt_integer(secret: TFHESecretKey, bits: Sequence[LweSample]) -> int:
    """Decrypt an encrypted integer produced by :func:`encrypt_integer`."""
    return bits_to_int(decrypt_bits(secret, list(bits)))


def encrypt_integers(
    secret: TFHESecretKey, values: Sequence[int], width: int, rng: SeedLike = None
) -> List[LweBatch]:
    """Encrypt a list of unsigned integers as ``width`` LSB-first *bit planes*.

    Plane ``i`` is an :class:`LweBatch` whose row ``j`` encrypts bit ``i`` of
    ``values[j]`` — the layout the batched circuit blocks consume: feeding the
    planes to :func:`add` with a ``BatchGateEvaluator`` adds all ``len(values)``
    pairs of integers at once.
    """
    if not values:
        raise ValueError("at least one value is required")
    rng = make_rng(rng)
    bit_rows = [int_to_bits(int(v), width) for v in values]
    return [
        encrypt_bit_batch(secret, [row[i] for row in bit_rows], rng)
        for i in range(width)
    ]


def decrypt_integers(secret: TFHESecretKey, planes: Sequence[LweBatch]) -> List[int]:
    """Decrypt LSB-first bit planes back to one integer per batch row."""
    plane_bits = [decrypt_bit_batch(secret, plane) for plane in planes]
    batch = len(plane_bits[0])
    return [bits_to_int([plane[j] for plane in plane_bits]) for j in range(batch)]


def _check_widths(a: Sequence[LweSample], b: Sequence[LweSample]) -> None:
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    if not a:
        raise ValueError("operands must have at least one bit")


def full_adder(
    evaluator: TFHEGateEvaluator, a: LweSample, b: LweSample, carry: LweSample
) -> Tuple[LweSample, LweSample]:
    """One full-adder stage; returns ``(sum, carry_out)`` (5 bootstrapped gates)."""
    a_xor_b = evaluator.xor(a, b)
    total = evaluator.xor(a_xor_b, carry)
    carry_out = evaluator.or_(evaluator.and_(a, b), evaluator.and_(a_xor_b, carry))
    return total, carry_out


def add(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> List[LweSample]:
    """Ripple-carry addition; returns ``width + 1`` bits (the last is the carry)."""
    _check_widths(a, b)
    carry = evaluator.constant(0)
    out: List[LweSample] = []
    for bit_a, bit_b in zip(a, b):
        total, carry = full_adder(evaluator, bit_a, bit_b, carry)
        out.append(total)
    out.append(carry)
    return out


def negate(evaluator: TFHEGateEvaluator, a: Sequence[LweSample]) -> List[LweSample]:
    """Two's-complement negation (invert and add one), same width as the input."""
    inverted = [evaluator.not_(bit) for bit in a]
    one = [evaluator.constant(1)] + [evaluator.constant(0)] * (len(a) - 1)
    return add(evaluator, inverted, one)[: len(a)]


def subtract(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> List[LweSample]:
    """Two's-complement subtraction ``a - b`` truncated to the operand width."""
    _check_widths(a, b)
    return add(evaluator, list(a), negate(evaluator, b))[: len(a)]


def equal(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> LweSample:
    """Encrypted equality test (AND of per-bit XNORs)."""
    _check_widths(a, b)
    result = evaluator.constant(1)
    for bit_a, bit_b in zip(a, b):
        result = evaluator.and_(result, evaluator.xnor(bit_a, bit_b))
    return result


def greater_than(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> LweSample:
    """Encrypted unsigned comparison ``a > b`` (bit-serial, LSB to MSB)."""
    _check_widths(a, b)
    result = evaluator.constant(0)
    for bit_a, bit_b in zip(a, b):
        bits_equal = evaluator.xnor(bit_a, bit_b)
        a_wins_here = evaluator.andyn(bit_a, bit_b)
        result = evaluator.mux(bits_equal, result, a_wins_here)
    return result


def select(
    evaluator: TFHEGateEvaluator,
    condition: LweSample,
    if_true: Sequence[LweSample],
    if_false: Sequence[LweSample],
) -> List[LweSample]:
    """Vector multiplexer: returns ``if_true`` when ``condition`` encrypts 1."""
    _check_widths(if_true, if_false)
    return [evaluator.mux(condition, t, f) for t, f in zip(if_true, if_false)]


def maximum(
    evaluator: TFHEGateEvaluator,
    a: Sequence[LweSample],
    b: Sequence[LweSample],
) -> List[LweSample]:
    """Encrypted unsigned maximum of two integers."""
    return select(evaluator, greater_than(evaluator, a, b), a, b)

"""Prometheus text exposition: render a registry snapshot, parse it back.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot
<repro.telemetry.metrics.MetricsRegistry.snapshot>` into the Prometheus
text format (version 0.0.4) the server's ``metrics_prom`` op returns::

    # HELP fhe_rows_bootstrapped_total Ciphertext rows bootstrapped.
    # TYPE fhe_rows_bootstrapped_total counter
    fhe_rows_bootstrapped_total 4096
    # TYPE fhe_flush_seconds histogram
    fhe_flush_seconds_bucket{le="0.005"} 3
    ...
    fhe_flush_seconds_bucket{le="+Inf"} 17
    fhe_flush_seconds_sum 1.234
    fhe_flush_seconds_count 17

:func:`parse_prometheus_text` is the matching validator-grade parser used by
``tools/check_metrics.py`` and the telemetry-smoke CI job: it checks line
grammar, label escaping, known ``# TYPE`` kinds, histogram bucket
monotonicity and ``_count``/``+Inf`` agreement, and returns the parsed
families so callers can assert on specific series.  It is deliberately
dependency-free — the point is to validate our own output without trusting
the code that produced it.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["render_prometheus", "parse_prometheus_text", "PrometheusParseError"]


class PrometheusParseError(ValueError):
    """The exposition text violates the Prometheus text format."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_no}: {reason}: {line!r}")
        self.line_no = line_no
        self.line = line
        self.reason = reason


# --------------------------------------------------------------------------- #
# rendering                                                                   #
# --------------------------------------------------------------------------- #


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, str(v)) for k, v in labels.items()]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_le(le: float) -> str:
    return "+Inf" if math.isinf(le) else _format_value(le)


def render_prometheus(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """Render one registry snapshot as Prometheus text format."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family.get("type", "untyped")
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family.get("series", []):
            labels = series.get("labels", {})
            if kind == "histogram":
                for le, cum in series["buckets"]:
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(labels, ('le', _format_le(le)))} {cum}"
                    )
                lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(series['sum'])}")
                lines.append(f"{name}_count{_format_labels(labels)} {series['count']}")
            else:
                lines.append(f"{name}{_format_labels(labels)} {_format_value(series['value'])}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# parsing / validation                                                        #
# --------------------------------------------------------------------------- #

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )


def _parse_value(raw: str, line_no: int, line: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    try:
        return float(raw)
    except ValueError:
        raise PrometheusParseError(line_no, line, f"unparsable value {raw!r}") from None


def _parse_labels(raw: Optional[str], line_no: int, line: str) -> Dict[str, str]:
    if not raw:
        return {}
    labels: Dict[str, str] = {}
    rest = raw
    while rest:
        match = _LABEL_PAIR.match(rest)
        if match is None:
            raise PrometheusParseError(line_no, line, f"malformed label block at {rest!r}")
        labels[match.group(1)] = _unescape_label_value(match.group(2))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise PrometheusParseError(line_no, line, f"malformed label separator at {rest!r}")
    return labels


def _base_name(name: str, types: Mapping[str, str]) -> str:
    """The family a sample line belongs to (histogram suffixes stripped)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return name


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse and validate Prometheus text exposition.

    Returns ``{family: {"type": str, "help": str, "samples":
    [(name, labels, value)]}}``.  Raises :class:`PrometheusParseError` on a
    grammar violation, an unknown ``# TYPE``, a sample for an undeclared
    histogram suffix, non-monotone histogram buckets, or a histogram whose
    ``+Inf`` bucket disagrees with its ``_count``.
    """
    families: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(None, 1)
            if not parts:
                raise PrometheusParseError(line_no, line, "HELP without a metric name")
            name = parts[0]
            families.setdefault(name, {"type": "untyped", "help": "", "samples": []})
            families[name]["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise PrometheusParseError(line_no, line, "TYPE needs '<name> <type>'")
            name, kind = parts
            if kind not in _KNOWN_TYPES:
                raise PrometheusParseError(line_no, line, f"unknown type {kind!r}")
            families.setdefault(name, {"type": "untyped", "help": "", "samples": []})
            families[name]["type"] = kind
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _METRIC_LINE.match(line)
        if match is None:
            raise PrometheusParseError(line_no, line, "unparsable sample line")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"), line_no, line)
        value = _parse_value(match.group("value"), line_no, line)
        base = _base_name(name, types)
        family = families.setdefault(base, {"type": "untyped", "help": "", "samples": []})
        if name != base and family["type"] not in ("histogram", "summary"):
            raise PrometheusParseError(
                line_no, line, f"suffix sample {name!r} without a histogram TYPE"
            )
        family["samples"].append((name, labels, value))
    _validate_histograms(families)
    return families


def _validate_histograms(families: Mapping[str, Dict[str, Any]]) -> None:
    for base, family in families.items():
        if family["type"] != "histogram":
            continue
        # Group bucket samples per non-le label set.
        buckets: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for name, labels, value in family["samples"]:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if name == f"{base}_bucket":
                le_raw = labels.get("le")
                if le_raw is None:
                    raise PrometheusParseError(0, base, "bucket sample without 'le'")
                le = float("inf") if le_raw == "+Inf" else float(le_raw)
                buckets.setdefault(key, []).append((le, value))
            elif name == f"{base}_count":
                counts[key] = value
        for key, pairs in buckets.items():
            ordered = sorted(pairs)
            cums = [c for _, c in ordered]
            if any(b < a for a, b in zip(cums, cums[1:])):
                raise PrometheusParseError(
                    0, base, f"histogram buckets not monotone for labels {dict(key)!r}"
                )
            if not ordered or not math.isinf(ordered[-1][0]):
                raise PrometheusParseError(
                    0, base, f"histogram lacks a +Inf bucket for labels {dict(key)!r}"
                )
            if key in counts and counts[key] != ordered[-1][1]:
                raise PrometheusParseError(
                    0,
                    base,
                    f"histogram +Inf bucket {ordered[-1][1]} != _count "
                    f"{counts[key]} for labels {dict(key)!r}",
                )

"""Per-job tracing: spans with parent links in a bounded in-memory ring.

One submitted job gets one **trace id** that travels with it end to end:
client request header → server dispatch → scheduler enqueue → flush round →
worker-pool task tuple (across the process boundary) → engine contract →
reply frame.  Along the way the instrumented layers record **spans** —
named, timed intervals with a parent link — into the :class:`Tracer`'s ring:

==================  =========================================================
span                meaning
==================  =========================================================
``enqueue``         job accepted into the scheduler queue (instant)
``coalesce_wait``   submit (or previous round) → the flush round that takes
                    the job's rows (the batching window the job paid)
``flush``           one scheduler round's dispatch for one client: every
                    batch-level span below parents here
``worker_dispatch`` one pool task: send → validated result (parent side)
``engine_contract`` blind-rotate + extract of one batched call (the
                    transform-engine contract; recorded where it ran,
                    including inside forked workers)
``keyswitch``       the key-switching epilogue of that batched call
``reply``           one reply frame sent for the job's request (a retried
                    request records one per attempt — same trace)
``job``             root: submit → handle resolution, one per job
==================  =========================================================

Batch-level spans (``flush``, ``worker_dispatch``, ``engine_contract``,
``keyswitch``) cover *every* job coalesced into the round, so they are
recorded once with the round's first trace id as primary and the full
participant list in ``attrs["traces"]`` — :meth:`Tracer.spans_for` resolves
membership either way.

The ring is bounded (``ring_size``, oldest dropped first) and lock-guarded;
spans recorded inside worker processes cross the task pipe as plain tuples
(:meth:`Span.to_tuple` / :meth:`Tracer.ingest`).  Export targets:
:meth:`Tracer.export_json` (plain span dicts) and
:meth:`Tracer.export_chrome` (Chrome trace-event JSON — load the file at
``chrome://tracing`` or https://ui.perfetto.dev).

Timestamps are wall-clock (``time.time()``) so spans from different
processes line up on one axis; durations are measured with
``time.perf_counter()`` so they don't inherit wall-clock jumps.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Span", "Tracer"]

#: Span field order on the wire (worker → parent pipe tuples).
_TUPLE_FIELDS = ("trace_id", "span_id", "parent_id", "name", "start", "duration")


#: Shared attrs for spans recorded without any: every such span aliasing one
#: dict (instead of allocating its own) keeps the per-span GC-tracked
#: allocation count down — readers never mutate ``span.attrs`` in place.
_NO_ATTRS: Dict[str, Any] = {}


class Span:
    """One named, timed interval of one trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "duration", "attrs")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
        duration: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = attrs if attrs else _NO_ATTRS

    def in_trace(self, trace_id: str) -> bool:
        """Whether this span belongs to ``trace_id`` (primary or batch member)."""
        if self.trace_id == trace_id:
            return True
        traces = self.attrs.get("traces")
        return isinstance(traces, (list, tuple)) and trace_id in traces

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    def to_tuple(self) -> Tuple:
        """Pipe-friendly form (plain immutables only)."""
        return (
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.name,
            self.start,
            self.duration,
            dict(self.attrs),
        )

    @classmethod
    def from_tuple(cls, data: Sequence) -> "Span":
        trace_id, span_id, parent_id, name, start, duration, attrs = data
        if not (isinstance(trace_id, str) and isinstance(span_id, str) and isinstance(name, str)):
            raise ValueError(f"malformed span tuple: {data!r}")
        return cls(
            trace_id,
            span_id,
            parent_id if isinstance(parent_id, str) else None,
            name,
            float(start),
            float(duration),
            dict(attrs) if isinstance(attrs, dict) else {},
        )

    def to_chrome_event(self, pid: int = 0) -> Dict[str, Any]:
        """One complete-event (``ph: "X"``) in Chrome trace-event format."""
        args: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }
        if self.parent_id is not None:
            args["parent_id"] = self.parent_id
        args.update(self.attrs)
        return {
            "name": self.name,
            "cat": "fhe",
            "ph": "X",
            "ts": self.start * 1e6,  # microseconds
            "dur": max(self.duration, 0.0) * 1e6,
            "pid": pid,
            "tid": int(self.attrs.get("pid", pid)) or pid,
            "args": args,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"dur={self.duration * 1e3:.2f}ms)"
        )


class Tracer:
    """Bounded ring of :class:`Span` records plus id generation.

    ``enabled=False`` turns every record call into an early return, so a
    disabled tracer costs one attribute read per instrumentation site.
    """

    def __init__(self, ring_size: int = 4096, enabled: bool = True) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self.enabled = enabled
        self.ring_size = ring_size
        self._ring: "deque[Span]" = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        # pid captured once: getpid() is a real syscall, too expensive per
        # span id.  Safe across fork because workers always build a *fresh*
        # Tracer after forking (see workers._worker_main) rather than
        # minting ids from the parent's.
        self._id_prefix = f"{os.getpid():x}-"

    # -- ids ----------------------------------------------------------------
    @staticmethod
    def new_trace_id() -> str:
        return uuid.uuid4().hex

    def new_span_id(self) -> str:
        # pid-qualified so ids minted in forked workers never collide with
        # the parent's (both sides feed one ring).
        return f"{self._id_prefix}{next(self._counter):x}"

    # -- recording ----------------------------------------------------------
    def record(
        self,
        name: str,
        trace_id: str,
        start: float,
        duration: float,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        """Append one span; returns its id (``None`` when disabled)."""
        if not self.enabled:
            return None
        span = Span(
            trace_id,
            span_id or self.new_span_id(),
            parent_id,
            name,
            start,
            duration,
            attrs,
        )
        with self._lock:
            self._ring.append(span)
        return span.span_id

    def ingest(self, data: Sequence) -> None:
        """Adopt one :meth:`Span.to_tuple` record (e.g. from a worker pipe)."""
        if not self.enabled:
            return
        span = Span.from_tuple(data)
        with self._lock:
            self._ring.append(span)

    # -- reading ------------------------------------------------------------
    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        """Snapshot of the ring, optionally filtered to one trace."""
        with self._lock:
            spans = list(self._ring)
        if trace_id is None:
            return spans
        return [span for span in spans if span.in_trace(trace_id)]

    def spans_for(self, trace_id: str) -> List[Span]:
        return self.spans(trace_id)

    def trace_ids(self) -> List[str]:
        """Distinct primary trace ids, oldest first."""
        seen: Dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # -- export -------------------------------------------------------------
    def export_json(self, trace_id: Optional[str] = None) -> str:
        """Plain JSON list of span dicts."""
        return json.dumps([span.to_dict() for span in self.spans(trace_id)])

    def export_chrome(self, trace_id: Optional[str] = None) -> str:
        """Chrome trace-event JSON (``chrome://tracing`` / Perfetto)."""
        pid = os.getpid()
        events = [span.to_chrome_event(pid) for span in self.spans(trace_id)]
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def wall_and_perf() -> Tuple[float, float]:
    """The (wall-clock, perf-counter) pair instrumentation sites start from."""
    return time.time(), time.perf_counter()

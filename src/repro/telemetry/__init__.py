"""Unified telemetry: metrics registry + per-job tracing + exposition.

One :class:`Telemetry` bundle carries the two sinks the runtime reports
into — a :class:`repro.telemetry.metrics.MetricsRegistry` (counters,
gauges, histograms; rendered by the server's ``metrics_prom`` op via
:func:`repro.telemetry.exposition.render_prometheus`) and a
:class:`repro.telemetry.tracing.Tracer` (bounded span ring; exported by the
``trace_export`` op) — plus the *stage round* plumbing that lets
batch-level code (one blind rotation serving many jobs) attribute its spans
to every participating trace.

Wiring pattern (zero overhead when disabled):

* ``BatchScheduler(telemetry=...)`` / ``FheServer(telemetry=True)`` opt the
  runtime in; a scheduler built without telemetry keeps every
  instrumentation site behind a single ``is None`` check.
* The scheduler mirrors the bundle onto each registered
  :class:`repro.runtime.context.FheContext` (``context.telemetry``), which
  is how the innermost layer — :class:`repro.tfhe.gates.BatchGateEvaluator`
  — finds it without threading an argument through every call.
* During one flush round the dispatcher wraps execution in
  :meth:`Telemetry.stage_round`; inside it, :meth:`Telemetry.stage` times
  the ``engine_contract`` / ``keyswitch`` stages and records them against
  the round's traces.  With no active round (or tracing disabled)
  ``stage()`` is a no-op timing nothing.
* Worker processes build a private, metrics-less ``Telemetry`` per traced
  task and ship the recorded spans back over the result pipe as tuples
  (:meth:`repro.telemetry.tracing.Span.to_tuple`); the parent pool ingests
  them into its own ring.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    ROWS_PER_CALL_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.telemetry.tracing import Span, Tracer
from repro.telemetry.exposition import (
    PrometheusParseError,
    parse_prometheus_text,
    render_prometheus,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "Span",
    "Tracer",
    "render_prometheus",
    "parse_prometheus_text",
    "PrometheusParseError",
    "DEFAULT_LATENCY_BUCKETS",
    "ROWS_PER_CALL_BUCKETS",
]


class Telemetry:
    """One registry + one tracer + the active stage-round state.

    ``metrics`` / ``tracing`` gate the two halves independently (a worker
    process traces without keeping a registry; a metrics-only deployment
    skips span recording entirely).
    """

    def __init__(
        self,
        metrics: bool = True,
        tracing: bool = True,
        ring_size: int = 4096,
    ) -> None:
        self.metrics_enabled = bool(metrics)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(ring_size=ring_size, enabled=bool(tracing))
        self._round = threading.local()
        #: Bound-series cache for the hot-path helpers below: resolving a
        #: series through the registry costs two locks plus label-name
        #: validation, which is real money when charged per *job*.  Children
        #: are reset in place by ``registry.reset()``, so cached handles
        #: never go stale.  (Benign race: two threads may resolve the same
        #: key once each; both get the same child.)
        self._series_cache: dict = {}

    # -- hot-path metric helpers --------------------------------------------
    def _bound_series(self, kind: str, name: str, help_text: str, labels, **kw):
        key = (name, labels)
        child = self._series_cache.get(key)
        if child is None:
            declare = getattr(self.registry, kind)
            family = declare(
                name, help_text, labelnames=tuple(k for k, _ in labels), **kw
            )
            child = family.labels(**dict(labels)) if labels else family._solo()
            self._series_cache[key] = child
        return child

    def count(
        self, name: str, help_text: str = "", amount: float = 1.0, **labels: Any
    ) -> None:
        """Increment a (possibly labeled) counter; no-op when metrics are off.

        The resolved child series is cached, so steady-state cost is one
        dict lookup and one locked float add.
        """
        if not self.metrics_enabled:
            return
        if not labels:  # fast path: most hot-site counters are unlabeled
            child = self._series_cache.get(name)
            if child is None:
                child = self._bound_series("counter", name, help_text, ())
                self._series_cache[name] = child
            child.inc(amount)
            return
        items = tuple(sorted((k, str(v)) for k, v in labels.items()))
        self._bound_series("counter", name, help_text, items).inc(amount)

    def observe(
        self,
        name: str,
        value: float,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: Any,
    ) -> None:
        """Observe into a (possibly labeled) histogram; no-op when off."""
        if not self.metrics_enabled:
            return
        items = tuple(sorted((k, str(v)) for k, v in labels.items()))
        self._bound_series(
            "histogram", name, help_text, items, buckets=buckets
        ).observe(value)

    # -- stage rounds --------------------------------------------------------
    @property
    def round_ctx(self) -> Optional[Tuple[Tuple[str, ...], Optional[str]]]:
        """The thread's active ``(trace ids, parent span id)`` round, if any."""
        return getattr(self._round, "ctx", None)

    @property
    def tracing_active(self) -> bool:
        """True iff spans recorded *now* would land in a round's traces."""
        return self.tracer.enabled and self.round_ctx is not None

    @contextmanager
    def stage_round(
        self,
        trace_ids: Sequence[str],
        parent_span_id: Optional[str] = None,
    ) -> Iterator[None]:
        """Declare the traces one batch-level execution works for.

        Every :meth:`stage` recorded inside attributes itself to
        ``trace_ids`` (first id primary, rest in ``attrs["traces"]``) with
        ``parent_span_id`` as its parent link (normally the round's
        ``flush`` span).  Rounds nest per thread; an empty id list
        deactivates staging for the block.
        """
        ids = tuple(trace_ids)
        previous = getattr(self._round, "ctx", None)
        self._round.ctx = (ids, parent_span_id) if ids else None
        try:
            yield
        finally:
            self._round.ctx = previous

    @contextmanager
    def stage(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time one batch-level stage and record it against the round.

        Outside an active round (or with tracing disabled) this costs two
        attribute reads and times nothing.
        """
        ctx = self.round_ctx if self.tracer.enabled else None
        if ctx is None:
            yield
            return
        start_wall = time.time()
        start_perf = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start_perf
            trace_ids, parent = ctx
            if len(trace_ids) > 1:
                attrs = {**attrs, "traces": list(trace_ids)}
            self.tracer.record(
                name,
                trace_id=trace_ids[0],
                start=start_wall,
                duration=duration,
                parent_id=parent,
                attrs=attrs or None,
            )

    # -- convenience ---------------------------------------------------------
    def drain_span_tuples(self) -> List[Tuple]:
        """Pop every recorded span as pipe-friendly tuples (worker side)."""
        spans = self.tracer.spans()
        self.tracer.clear()
        return [span.to_tuple() for span in spans]

    def render_prometheus(self) -> str:
        return render_prometheus(self.registry.snapshot())

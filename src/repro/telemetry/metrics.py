"""Dependency-free metrics primitives: counters, gauges, histograms.

The runtime has grown several ad-hoc counter bags —
:class:`repro.runtime.scheduler.SchedulerStats`,
:class:`repro.runtime.workers.PoolStats`, the per-engine
:class:`repro.tfhe.transform.TransformStats`, and the
:class:`repro.runtime.server.FheServer` busy-time/latency window.  This
module is the **single sink** those feeds converge into: a
:class:`MetricsRegistry` of named metric families, each either a
:class:`Counter` (monotone), :class:`Gauge` (set-to-current) or
:class:`Histogram` (bucketed distribution), optionally fanned out into
labeled series (``counter.labels(engine="double").inc()``).

Design constraints, in order:

* **Dependency-free.**  Standard library only — the serving stack must not
  grow a ``prometheus_client`` requirement to be observable.
* **Thread-safe.**  The asyncio event loop, the flusher's executor thread
  and the worker-pool parent all write concurrently; every mutation takes
  the family's lock (mutations are tiny — a float add — so contention is
  negligible next to a bootstrap).
* **Snapshot/reset.**  :meth:`MetricsRegistry.snapshot` returns a plain
  nested-dict copy (JSON-able, stable ordering) that the Prometheus/text
  renderer in :mod:`repro.telemetry.exposition` and the server's legacy
  ``metrics()`` dict are both views over; :meth:`MetricsRegistry.reset`
  zeroes every series in place (tests, bench isolation).

Histogram semantics follow Prometheus: bucket bounds are **inclusive upper
edges** (``le``) — an observation equal to a bound lands in that bound's
bucket — with an implicit ``+Inf`` overflow bucket, and the rendered bucket
counts are cumulative.  The default bounds are tuned to this runtime's two
dominant latency scales: sub-millisecond batched keyswitches and
multi-second cold flushes.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "ROWS_PER_CALL_BUCKETS",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Histogram bounds (seconds) spanning the flush/bootstrap latency range:
#: one batched keyswitch on TEST_TINY lands around 1 ms, a cold TEST_SMALL
#: flush (spectrum-cache warmup included) runs into the tens of seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: Histogram bounds for batch widths (rows per batched bootstrapping call).
ROWS_PER_CALL_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """A metric was declared or used inconsistently (name clash, wrong type,
    wrong label set, negative counter increment, unsorted buckets)."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise MetricError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise MetricError(f"duplicate label names in {names!r}")
    return names


class _Family:
    """One named metric family: shared metadata + labeled child series.

    A family declared with no label names has exactly one child (the empty
    label tuple) and the value methods (``inc``/``set``/``observe``) proxy
    to it, so unlabeled metrics read naturally:
    ``registry.counter("fhe_flushes_total", "...").inc()``.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()
        self._series: "Dict[Tuple[str, ...], Any]" = {}
        if not self.labelnames:
            self._series[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, *labelvalues: str, **labelkw: str):
        """The child series for one label-value combination (created lazily)."""
        if labelvalues and labelkw:
            raise MetricError("pass label values positionally or by name, not both")
        if labelkw:
            try:
                values = tuple(str(labelkw[name]) for name in self.labelnames)
            except KeyError as exc:
                raise MetricError(
                    f"metric {self.name!r} has labels {self.labelnames!r}; "
                    f"missing {exc.args[0]!r}"
                ) from None
            if len(labelkw) != len(self.labelnames):
                extra = set(labelkw) - set(self.labelnames)
                raise MetricError(
                    f"metric {self.name!r} has labels {self.labelnames!r}; "
                    f"unexpected {sorted(extra)!r}"
                )
        else:
            values = tuple(str(v) for v in labelvalues)
        if len(values) != len(self.labelnames):
            raise MetricError(
                f"metric {self.name!r} expects {len(self.labelnames)} label "
                f"value(s) {self.labelnames!r}, got {len(values)}"
            )
        with self._lock:
            child = self._series.get(values)
            if child is None:
                child = self._series[values] = self._new_child()
        return child

    def _solo(self):
        if self.labelnames:
            raise MetricError(
                f"metric {self.name!r} is labeled {self.labelnames!r}; "
                f"call .labels(...) first"
            )
        return self._series[()]

    def series(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Stable-ordered (labelvalues, child) pairs."""
        with self._lock:
            return sorted(self._series.items())

    def reset(self) -> None:
        with self._lock:
            for child in self._series.values():
                child.reset()


class _CounterValue:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Counter(_Family):
    """Monotone event count (``*_total`` by Prometheus convention)."""

    kind = "counter"

    def _new_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    @property
    def value(self) -> float:
        return self._solo().value


class _GaugeValue:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge(_Family):
    """Set-to-current value (queue depth, workers alive, breaker state)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeValue:
        return _GaugeValue()

    def set(self, value: float) -> None:
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    @property
    def value(self) -> float:
        return self._solo().value


class _HistogramValue:
    __slots__ = ("bounds", "counts", "sum", "count", "_lock")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; the trailing slot is +Inf.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # Inclusive upper edge (Prometheus `le`): an observation equal to a
        # bound belongs to that bound's bucket; past the last bound → +Inf.
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs ending with ``(inf, count)``."""
        with self._lock:
            counts = list(self.counts)
        edges = list(self.bounds) + [float("inf")]
        out: List[Tuple[float, int]] = []
        running = 0
        for le, n in zip(edges, counts):
            running += n
            out.append((le, running))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        containing the q-th observation; linear within the bucket is not
        attempted — good enough for a dashboard)."""
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return 0.0
        target = q * total
        running = 0
        for i, n in enumerate(counts):
            running += n
            if running >= target and n:
                if i < len(self.bounds):
                    return self.bounds[i]
                return float("inf")
        return float("inf")

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.sum = 0.0
            self.count = 0


class Histogram(_Family):
    """Bucketed latency/width distribution with Prometheus semantics."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(f"bucket bounds must be strictly increasing: {bounds!r}")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def quantile(self, q: float) -> float:
        return self._solo().quantile(q)


class MetricsRegistry:
    """Named metric families with get-or-create declaration semantics.

    Declaring the same name twice returns the existing family **iff** the
    type, help string's owner (help may differ; first wins) and label names
    match — a mismatch raises :class:`MetricError` instead of silently
    splitting one logical metric across two objects.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    def _declare(self, cls, name: str, help: str, labelnames: Sequence[str], **kw):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, labelnames, **kw)
                self._families[name] = family
                return family
        if not isinstance(family, cls):
            raise MetricError(
                f"metric {name!r} already declared as {family.kind}, "
                f"not {cls.kind}"
            )
        if family.labelnames != _check_labelnames(labelnames):
            raise MetricError(
                f"metric {name!r} already declared with labels "
                f"{family.labelnames!r}"
            )
        if cls is Histogram and "buckets" in kw:
            bounds = tuple(float(b) for b in kw["buckets"])
            if bounds[-1] == float("inf"):
                bounds = bounds[:-1]
            if family.buckets != bounds:
                raise MetricError(
                    f"metric {name!r} already declared with buckets "
                    f"{family.buckets!r}"
                )
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._declare(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict copy of every family: JSON-able, render-ready.

        Shape::

            {name: {"type": "counter"|"gauge"|"histogram",
                    "help": str, "labelnames": [...],
                    "series": [{"labels": {...}, "value": float}            # counter/gauge
                               | {"labels": {...}, "buckets": [[le, cum]..],
                                  "sum": float, "count": int}]}}            # histogram
        """
        out: Dict[str, Dict[str, Any]] = {}
        for family in self.families():
            series = []
            for labelvalues, child in family.series():
                labels = dict(zip(family.labelnames, labelvalues))
                if family.kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "buckets": [[le, n] for le, n in child.cumulative()],
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": series,
            }
        return out

    def reset(self) -> None:
        for family in self.families():
            family.reset()

"""MATCHA accelerator performance and energy model.

Runs the cycle-level model of the Figure 7 architecture (gate DFG + list
scheduler), prints the Table 2 power/area envelope and sweeps the BKU factor
``m`` across all five evaluated platforms — i.e. regenerates the data behind
Figures 9, 10 and 11 from the command line.

Run:  python examples/matcha_accelerator_model.py
"""

from __future__ import annotations

from repro.analysis.comparison import (
    platform_comparison,
    render_figure9,
    render_figure10,
    render_figure11,
    render_table2,
)
from repro.core.accelerator import MatchaAccelerator, MatchaConfig
from repro.platforms.matcha import MatchaPlatform
from repro.tfhe.params import PAPER_110BIT
from repro.utils.tables import format_table


def main() -> None:
    print(render_table2())
    print()

    # Per-m detail of the MATCHA cycle model: latency, energy, utilisation.
    platform = MatchaPlatform(PAPER_110BIT)
    rows = []
    for m in (1, 2, 3, 4):
        report = platform.report(m)
        utilisation = platform.utilisation(m)
        rows.append(
            [
                m,
                f"{report.gate_latency_ms:.3f}",
                f"{platform.energy_per_gate_j(m) * 1e3:.2f}",
                f"{report.throughput_gates_per_s:.0f}",
                f"{utilisation['tgsw_cluster']:.2f}",
                f"{utilisation['ep_mac']:.2f}",
                f"{utilisation['hbm']:.2f}",
            ]
        )
    print(
        format_table(
            [
                "m",
                "latency (ms)",
                "energy/gate (mJ)",
                "gates/s",
                "TGSW util",
                "EP util",
                "HBM util",
            ],
            rows,
            title="MATCHA cycle model (one gate on one TGSW-cluster/EP-core pipeline pair).",
        )
    )
    print()

    # Full platform comparison (Figures 9-11).
    result = platform_comparison()
    print(render_figure9(result))
    print()
    print(render_figure10(result))
    print()
    print(render_figure11(result))
    print()
    print(
        f"MATCHA best throughput vs GPU best: {result.matcha_vs_gpu_throughput:.2f}x "
        "(paper: 2.3x)"
    )
    print(
        f"MATCHA best throughput/W vs ASIC:   {result.matcha_vs_asic_throughput_per_watt:.1f}x "
        "(paper: 6.3x)"
    )

    # The accelerator facade ties configuration and model together.
    accelerator = MatchaAccelerator(config=MatchaConfig(unroll_factor=3))
    report = accelerator.performance()
    print(
        f"\nMatchaAccelerator(m=3): {report.gate_latency_ms:.3f} ms/gate, "
        f"{report.throughput_gates_per_s:.0f} gates/s at {report.power_w:.2f} W"
    )


if __name__ == "__main__":
    main()

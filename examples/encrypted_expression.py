"""The encrypted-program compiler end to end: trace, optimize, execute.

An encrypted program is just a Python function — the compiler does the rest:

1. :func:`repro.compiler.trace` runs the function once over symbolic
   :class:`repro.compiler.FheUint` words and records every operation into a
   :class:`repro.tfhe.netlist.Circuit` (plain ints become constant wires);
2. :class:`repro.compiler.PassManager` shrinks the netlist — constant
   folding, NOT/COPY absorption, CSE, depth rebalancing, dead-node
   elimination — printing per-pass gate/depth stats, with every rewrite
   verified semantics-preserving by plaintext co-simulation;
3. the optimized circuit runs on real ciphertexts through
   :class:`repro.tfhe.executor.CircuitExecutor` (one mixed-gate batched
   bootstrapping per dependency level) and the decrypted result is asserted
   equal to the plaintext co-simulation.

Every gate the optimizer removes is a bootstrapping the executor never pays
for — compare the traced and optimized gate counts below.

Run:  PYTHONPATH=src python examples/encrypted_expression.py [--width 8]
"""

from __future__ import annotations

import argparse
import time

from repro import TEST_TINY, CircuitExecutor, generate_keys
from repro.compiler import FheUint, PassManager, fhe_max, simulate, trace
from repro.compiler.passes import circuit_depth, live_gate_count
from repro.tfhe.circuits import decrypt_integer, encrypt_integer
from repro.tfhe.transform import DoubleFFTNegacyclicTransform


def score(a, b, c):
    """The encrypted program: three lines of ordinary Python arithmetic."""
    best = fhe_max(a * 3 + b, b - c)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=8, help="operand width in bits")
    args = parser.parse_args()
    width = args.width

    # -- 1. trace -----------------------------------------------------------
    circuit = trace(
        score, FheUint(width, "a"), FheUint(width, "b"), FheUint(width, "c")
    )
    print(
        f"traced {circuit.name!r} at {width} bit: "
        f"{live_gate_count(circuit)} gates, depth {circuit_depth(circuit)}"
    )

    # -- 2. optimize (each pass co-simulated against its input) -------------
    manager = PassManager(verify=True, rng=1)
    optimized = manager.run(circuit)
    print("\nper-pass trajectory:")
    print(manager.summary())
    print(
        f"\noptimized: {live_gate_count(optimized)} gates "
        f"({live_gate_count(circuit)} traced), depth {circuit_depth(optimized)}"
    )

    # -- 3. execute on ciphertexts and co-simulate --------------------------
    params = TEST_TINY
    secret, cloud = generate_keys(
        params, DoubleFFTNegacyclicTransform(params.N), unroll_factor=1, rng=9
    )
    executor = CircuitExecutor.for_context(cloud.default_context(), batch_size=1)

    modulus = 2**width
    inputs = {"a": 23 % modulus, "b": 181 % modulus, "c": 201 % modulus}
    encrypted = {
        name: encrypt_integer(secret, value, width, rng=10 + i)
        for i, (name, value) in enumerate(inputs.items())
    }
    start = time.perf_counter()
    out = executor.run_samples(optimized, encrypted)
    seconds = time.perf_counter() - start

    decrypted = decrypt_integer(secret, out["out"])
    expected = simulate(optimized, inputs)["out"]
    print(
        f"\nencrypted score{tuple(inputs.values())} = {decrypted} "
        f"in {seconds:.2f}s ({executor.level_calls} batched levels)"
    )
    assert decrypted == expected, f"decrypted {decrypted}, co-simulation {expected}"
    assert decrypted == max(
        (inputs["a"] * 3 + inputs["b"]) % modulus,
        (inputs["b"] - inputs["c"]) % modulus,
    )
    print("encrypted result matches plaintext co-simulation")


if __name__ == "__main__":
    main()

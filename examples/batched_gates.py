"""Batched encrypted logic: many gates per bootstrapping pass.

The server-side cost of a TFHE gate is one bootstrapping; in pure Python a
single bootstrapping is dominated by NumPy dispatch overhead, not arithmetic.
The :class:`repro.tfhe.gates.BatchGateEvaluator` evaluates one gate over a
whole *batch* of independent ciphertext pairs at once — every step of
Algorithm 1 (rounding, blind rotation, extraction, key switch) runs as a
single vectorised pass over the batch, so the overhead is paid once per batch
instead of once per ciphertext.  The outputs are bit-identical to evaluating
the gates one at a time.

The demo NANDs ``batch`` ciphertext pairs both ways, checks the results
agree, then adds two vectors of encrypted integers with the batched
ripple-carry adder.

Run:  PYTHONPATH=src python examples/batched_gates.py [--batch 64]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import TEST_TINY, BatchGateEvaluator, TFHEGateEvaluator, generate_keys
from repro.tfhe.circuits import add, decrypt_integers, encrypt_integers
from repro.tfhe.gates import decrypt_bit_batch, encrypt_bit_batch
from repro.tfhe.transform import DoubleFFTNegacyclicTransform


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=64, help="batch width (default 64)")
    args = parser.parse_args()
    batch = args.batch

    params = TEST_TINY
    transform = DoubleFFTNegacyclicTransform(params.N)
    secret, cloud = generate_keys(params, transform, rng=1)
    print(f"Parameter set : {params.describe()}")
    print(f"Batch width   : {batch}")

    rng = np.random.default_rng(2)
    lhs_bits = [int(b) for b in rng.integers(0, 2, batch)]
    rhs_bits = [int(b) for b in rng.integers(0, 2, batch)]
    lhs = encrypt_bit_batch(secret, lhs_bits, rng=3)
    rhs = encrypt_bit_batch(secret, rhs_bits, rng=4)

    batched = BatchGateEvaluator(cloud, batch_size=batch)
    start = time.perf_counter()
    out = batched.nand(lhs, rhs)
    batched_s = time.perf_counter() - start

    scalar = TFHEGateEvaluator(cloud)
    start = time.perf_counter()
    seq = [scalar.nand(lhs[i], rhs[i]) for i in range(batch)]
    scalar_s = time.perf_counter() - start

    identical = all(
        np.array_equal(out.a[i], seq[i].a) and int(out.b[i]) == int(seq[i].b)
        for i in range(batch)
    )
    decrypted = decrypt_bit_batch(secret, out)
    correct = decrypted == [1 - (a & b) for a, b in zip(lhs_bits, rhs_bits)]
    print(f"NAND x{batch:<4}   : batched {batched_s * 1e3:7.1f} ms   "
          f"sequential {scalar_s * 1e3:7.1f} ms   speedup {scalar_s / batched_s:4.1f}x")
    print(f"bit-identical : {identical}   decrypts correctly: {correct}")

    width = 6
    a_vals = [int(v) for v in rng.integers(0, 2 ** (width - 1), batch)]
    b_vals = [int(v) for v in rng.integers(0, 2 ** (width - 1), batch)]
    a_planes = encrypt_integers(secret, a_vals, width, rng=5)
    b_planes = encrypt_integers(secret, b_vals, width, rng=6)
    start = time.perf_counter()
    total = add(batched, a_planes, b_planes)
    adder_s = time.perf_counter() - start
    sums = decrypt_integers(secret, total)
    ok = sums == [x + y for x, y in zip(a_vals, b_vals)]
    gates = batched.counters.gates
    print(f"adder x{batch:<4}  : {width}-bit ripple carry in {adder_s:5.2f} s "
          f"({gates} logical gates total)   all sums correct: {ok}")


if __name__ == "__main__":
    main()

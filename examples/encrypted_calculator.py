"""An encrypted integer calculator on programmable bootstrapping.

The boolean frontend computes ``a * b`` by shift-add over encrypted bits —
113 gate bootstrappings at 8 bit.  This example runs the same arithmetic on
radix-encoded integers instead: each ciphertext digit carries
``message_bits`` of payload plus ``carry_bits`` of headroom, additions are
digit-wise linear (zero bootstraps until carries must be normalised), and a
multiply is one batched partial-product lookup plus carry-propagation
sweeps — 24 bootstrappings for the same 8-bit product.

The flow mirrors the compiler pipeline end to end:

1. :func:`repro.compiler.trace_radix` records an ordinary Python function as
   a :class:`~repro.compiler.RadixProgram` of digit-LUT primitives;
2. :func:`repro.compiler.verify_against_boolean` co-simulates it against the
   boolean trace of the *same* function — the cross-lowering oracle;
3. the program runs on real ciphertexts through
   :class:`repro.tfhe.RadixEvaluator`, and every decrypted output is
   asserted against the plaintext simulation.

Run:  PYTHONPATH=src python examples/encrypted_calculator.py [--width 8]
"""

from __future__ import annotations

import argparse
import time

from repro import FheContext
from repro.compiler import RadixUint, trace, trace_radix, verify_against_boolean
from repro.compiler.frontend import FheUint
from repro.compiler.passes import live_gate_count
from repro.tfhe import (
    TEST_PBS,
    DigitEncoding,
    RadixEvaluator,
    decrypt_radix,
    encrypt_radix,
)
from repro.tfhe.lwe import decrypt_digit


def calculator(a, b):
    """The encrypted program: one line per calculator key."""
    return {
        "sum": a + b,
        "product": a * b,
        "affine": a * 3 + 7,
        "a_bigger": a > b,
        "equal": a == b,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=8, help="operand width in bits")
    parser.add_argument("--a", type=int, default=173, help="left operand")
    parser.add_argument("--b", type=int, default=58, help="right operand")
    args = parser.parse_args()
    width, modulus = args.width, 2**args.width
    a_val, b_val = args.a % modulus, args.b % modulus

    # -- 1. trace the same function through both lowerings ------------------
    program = trace_radix(calculator, RadixUint(width, "a"), RadixUint(width, "b"))
    boolean = trace(calculator, FheUint(width, "a"), FheUint(width, "b"))
    print(
        f"traced {program.name!r} at {width} bit: {len(program.ops)} radix ops "
        f"vs {live_gate_count(boolean)} boolean gates"
    )

    # -- 2. cross-lowering oracle: both must agree on random inputs ----------
    verify_against_boolean(program, boolean, trials=32, rng=7)
    print("radix and boolean lowerings agree on 32 randomized inputs")

    # -- 3. run on real ciphertexts ------------------------------------------
    encoding = DigitEncoding(message_bits=2, carry_bits=2)
    secret, context = FheContext.generate(TEST_PBS, rng=1)
    evaluator = RadixEvaluator(context, encoding)
    digits = program.digit_width(evaluator)

    encrypted = {
        "a": encrypt_radix(secret.lwe_key, a_val, digits, encoding, rng=2),
        "b": encrypt_radix(secret.lwe_key, b_val, digits, encoding, rng=3),
    }
    start = time.perf_counter()
    out = program.run(evaluator, encrypted)
    seconds = time.perf_counter() - start

    expected = program.simulate({"a": a_val, "b": b_val})
    results = {}
    for name in program.outputs:
        if program.outputs[name] in program.bool_values:
            results[name] = decrypt_digit(secret.lwe_key, out[name], encoding)
        else:
            results[name] = decrypt_radix(secret.lwe_key, out[name])

    print(f"\ncalculator({a_val}, {b_val}) mod {modulus}, decrypted:")
    for name, value in results.items():
        print(f"  {name:>9} = {value}")
        assert value == expected[name], f"{name}: got {value}, expected {expected[name]}"
    print(
        f"\n{evaluator.counters.bootstraps} bootstrappings in {seconds:.2f}s "
        f"(boolean lowering would pay one per gate: {live_gate_count(boolean)})"
    )
    print("all outputs match the plaintext simulation")


if __name__ == "__main__":
    main()

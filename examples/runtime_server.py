"""Client/server round trip through serialized keys and the batch scheduler.

Two clients each generate a keypair and write the *cloud* half to disk with
:mod:`repro.tfhe.serialize` (the secret halves never leave the client).  A
server process loads the cloud keys, registers each under a client id in a
:class:`repro.runtime.BatchScheduler`, and serves several concurrent sessions
per client: single-gate jobs and a whole encrypted-adder circuit job arrive
interleaved, and the scheduler coalesces every job that shares a cloud key
into single mixed-gate batched bootstrappings (different clients' keys can
never share a bootstrap — their ciphertexts are algebraically incompatible).
Results travel back as serialized ciphertexts and only the owning client can
decrypt them.

Run:  python examples/runtime_server.py [--width 6] [--sessions 4]
"""

from __future__ import annotations

import argparse
import pathlib
import tempfile
import time

from repro.tfhe.circuits import bits_to_int, encrypt_integer
from repro.tfhe.gates import decrypt_bit, decrypt_bits, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.netlist import adder_netlist
from repro.tfhe.params import TEST_TINY
from repro.tfhe.serialize import (
    load_cloud_key,
    load_lwe_sample,
    save_cloud_key,
    save_lwe_sample,
)
from repro.tfhe.transform import DoubleFFTNegacyclicTransform
from repro.runtime import BatchScheduler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=6, help="adder bit width")
    parser.add_argument(
        "--sessions", type=int, default=4, help="gate sessions per client"
    )
    args = parser.parse_args()

    params = TEST_TINY
    print(f"Parameter set : {params.describe()}")
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-runtime-"))

    # --- client side: keygen + serialization --------------------------------
    clients = {}
    for name, seed in (("alice", 11), ("bob", 22)):
        transform = DoubleFFTNegacyclicTransform(params.N)
        # eager=False: the client only ships the key; the server's context
        # builds the spectrum cache when it loads it.
        secret, cloud = generate_keys(
            params, transform, unroll_factor=1, rng=seed, eager=False
        )
        cloud_path = workdir / f"{name}.cloud.npz"
        save_cloud_key(cloud_path, cloud)
        clients[name] = {"secret": secret, "cloud_path": cloud_path}
        print(
            f"{name}: cloud key serialized to {cloud_path.name} "
            f"({cloud_path.stat().st_size / 1024:.0f} KiB)"
        )

    # --- server side: load keys, open sessions, coalesce jobs ---------------
    scheduler = BatchScheduler()
    for name, entry in clients.items():
        scheduler.register_client(name, load_cloud_key(entry["cloud_path"]))

    jobs = []
    for name, entry in clients.items():
        secret = entry["secret"]
        # Several single-gate sessions per client ...
        for i in range(args.sessions):
            session = scheduler.session(name)
            bit_a, bit_b = i & 1, (i >> 1) & 1
            ct_path = workdir / f"{name}.gate{i}.npz"
            save_lwe_sample(ct_path, encrypt_bit(secret, bit_a, rng=100 + i))
            ca = load_lwe_sample(ct_path)  # ciphertexts travel as files too
            cb = encrypt_bit(secret, bit_b, rng=200 + i)
            handle = session.submit_gate("nand", ca, cb)
            jobs.append(("gate", name, (bit_a, bit_b), handle))
        # ... plus one whole encrypted-adder circuit job.
        a_val, b_val = 19 % (1 << args.width), 7 % (1 << args.width)
        circuit_session = scheduler.session(name)
        handle = circuit_session.submit_circuit(
            adder_netlist(args.width),
            {
                "a": encrypt_integer(secret, a_val, args.width, rng=300),
                "b": encrypt_integer(secret, b_val, args.width, rng=301),
            },
        )
        jobs.append(("add", name, (a_val, b_val), handle))

    start = time.perf_counter()
    rows = scheduler.flush()
    elapsed = time.perf_counter() - start
    stats = scheduler.stats
    print(
        f"flush: {rows} rows in {stats.batched_calls} batched bootstrapping "
        f"calls (mean fill {stats.mean_rows_per_call:.1f} rows/call) "
        f"in {elapsed:.2f} s"
    )

    # --- client side again: decrypt and verify ------------------------------
    for kind, name, payload, handle in jobs:
        secret = clients[name]["secret"]
        if kind == "gate":
            bit_a, bit_b = payload
            result_path = workdir / f"{name}.result.npz"
            save_lwe_sample(result_path, handle.result())
            got = decrypt_bit(secret, load_lwe_sample(result_path))
            expected = 1 - (bit_a & bit_b)
            status = "ok" if got == expected else "WRONG"
            print(f"{name}: NAND({bit_a}, {bit_b}) -> {got} [{status}]")
            assert got == expected
        else:
            a_val, b_val = payload
            got = bits_to_int(decrypt_bits(secret, handle.result()["sum"]))
            status = "ok" if got == a_val + b_val else "WRONG"
            print(f"{name}: {a_val} + {b_val} = {got} [{status}]")
            assert got == a_val + b_val
    print("all results decrypted correctly by their owning clients")


if __name__ == "__main__":
    main()

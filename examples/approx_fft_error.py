"""Approximate-FFT error sweep (Figure 8) and its effect on the noise budget.

Sweeps the DVQTF (dyadic-value-quantised twiddle factor) bit-width, measures
the polynomial-product error of the approximate multiplication-less integer
FFT against the exact negacyclic product, and checks each configuration
against the noise budget of gate bootstrapping at several BKU factors.

Run:  python examples/approx_fft_error.py [--degree 1024] [--trials 2]
"""

from __future__ import annotations

import argparse

from repro.analysis.fft_sweep import fft_error_sweep, render_figure8
from repro.tfhe.noise import TfheNoiseModel, max_safe_fft_error
from repro.tfhe.params import PAPER_110BIT
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--degree", type=int, default=1024, help="ring degree N")
    parser.add_argument("--trials", type=int, default=2, help="random products per point")
    args = parser.parse_args()

    samples = fft_error_sweep(
        degree=args.degree,
        twiddle_bits=(10, 16, 20, 24, 28, 32, 38, 44, 52, 58, 64),
        trials=args.trials,
        rng=0,
    )
    print(render_figure8(samples))
    print()

    # How much error each BKU factor can tolerate (Section 4.3).
    rows = []
    for m in (2, 3, 4, 5):
        budget = max_safe_fft_error(PAPER_110BIT, m)
        model = TfheNoiseModel(PAPER_110BIT, m)
        rows.append(
            [
                m,
                f"{model.gate_budget().total_stddev:.2e}",
                f"{budget:.2e}",
                f"{20 * __import__('math').log10(budget):.0f} dB",
            ]
        )
    print(
        format_table(
            ["m", "baseline noise stddev", "max tolerable FFT error", "budget in dB"],
            rows,
            title="Error budget left for the approximate FFT per BKU factor (Section 4.3).",
        )
    )
    print()

    floor = [s for s in samples if s.twiddle_bits == 64][0]
    print(
        f"Measured 64-bit DVQTF error: {floor.rms_torus_error:.2e} "
        f"({floor.error_db:.0f} dB) — comfortably inside every budget above, which is "
        "why MATCHA bootstraps correctly (the paper reports the same conclusion at -141 dB)."
    )


if __name__ == "__main__":
    main()

"""Multiple network clients sharing one serving front (and its worker pool).

Spawns ``tools/serve.py`` as a real server process (or connects to one you
already started with ``--connect HOST:PORT``), then runs several concurrent
clients.  Each client generates its **own** keypair, uploads only the cloud
half over the wire, pipelines a burst of gate requests plus one compiled
adder circuit, and decrypts the replies with the secret half that never left
it.  The server coalesces whatever arrives inside one flush window into
batched bootstrappings and — with ``--workers N`` — shards those rows across
worker processes that map one shared copy of each client's key spectra.

With ``--resilient`` every client runs through
:class:`repro.runtime.resilient.ResilientClient` instead, and client 0 kills
its own socket halfway through the burst: the retry layer reconnects,
re-registers the key (answered from the server's session cache) and resubmits
the unacknowledged gates under their original request ids, so every result
still verifies and nothing runs twice (see ``docs/operations.md``).

Run:  python examples/serving_clients.py [--clients 3] [--gates 8] [--workers 2] [--resilient]
"""

from __future__ import annotations

import argparse
import pathlib
import socket
import subprocess
import sys
import threading
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.runtime.protocol import ServingClient, pack_parts, unpack_parts  # noqa: E402
from repro.runtime.resilient import ResilientClient  # noqa: E402
from repro.tfhe.serialize import from_bytes, to_bytes  # noqa: E402
from repro.tfhe.circuits import bits_to_int, encrypt_integer  # noqa: E402
from repro.tfhe.gates import decrypt_bit, decrypt_bits, encrypt_bit  # noqa: E402
from repro.tfhe.keys import generate_keys  # noqa: E402
from repro.tfhe.lwe import LweBatch  # noqa: E402
from repro.tfhe.netlist import adder_netlist  # noqa: E402
from repro.tfhe.params import TEST_TINY  # noqa: E402
from repro.tfhe.transform import DoubleFFTNegacyclicTransform  # noqa: E402


def start_server(workers: int) -> tuple[subprocess.Popen, int]:
    """Launch ``tools/serve.py`` on a free port; returns (process, port)."""
    process = subprocess.Popen(
        [
            sys.executable,
            str(ROOT / "tools" / "serve.py"),
            "--port",
            "0",
            "--workers",
            str(workers),
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    assert process.stdout is not None
    line = process.stdout.readline()  # "repro-serve listening on host:port"
    if "listening on" not in line:
        process.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return process, int(line.rsplit(":", 1)[1])


def run_client(
    name: str,
    seed: int,
    port: int,
    gates: int,
    width: int,
    report: dict,
    resilient: bool = False,
    inject_disconnect: bool = False,
) -> None:
    params = TEST_TINY
    secret, cloud = generate_keys(
        params,
        DoubleFFTNegacyclicTransform(params.N),
        unroll_factor=1,
        rng=seed,
        eager=False,
    )
    if resilient:
        client = ResilientClient(port=port, base_delay=0.01, session=f"demo-{name}")
    else:
        client = ServingClient(port=port)
    with client:
        client.register_key(cloud)

        # Pipeline a burst of gates: submit all, then collect all, so the
        # server can coalesce them (plus other clients' bursts) per flush.
        cases = [(i & 1, (i >> 1) & 1) for i in range(gates)]
        ids = []
        for i, (a, b) in enumerate(cases):
            ca = encrypt_bit(secret, a, rng=seed * 1000 + 2 * i)
            cb = encrypt_bit(secret, b, rng=seed * 1000 + 2 * i + 1)
            if resilient:
                ids.append(
                    client.submit(
                        "gate", pack_parts([to_bytes(ca), to_bytes(cb)]), gate="nand"
                    )
                )
            else:
                ids.append(client.submit_gate("nand", ca, cb))

        if resilient and inject_disconnect and client._client is not None:
            # Kill the socket under the retry layer: the next result() must
            # reconnect, re-register and resubmit without losing a job.
            client._client._sock.shutdown(socket.SHUT_RDWR)

        for (a, b), request_id in zip(cases, ids):
            if resilient:
                _, body = client.result(request_id)
                sample = from_bytes(unpack_parts(body, expected=1)[0])
            else:
                sample = client.gate_result(request_id)
            got = decrypt_bit(secret, sample)
            assert got == 1 - (a & b), f"{name}: NAND({a},{b}) -> {got}"

        # One compiled circuit: an encrypted adder over wire-borne inputs.
        a_val, b_val = (19 + seed) % (1 << width), (7 + seed) % (1 << width)
        bits = encrypt_integer(secret, a_val, width, rng=seed + 500)
        bits += encrypt_integer(secret, b_val, width, rng=seed + 600)
        out = client.run_circuit(adder_netlist(width), LweBatch.from_samples(bits))
        samples = out.to_samples()
        total = bits_to_int(decrypt_bits(secret, samples[:width]))
        assert total == (a_val + b_val) % (1 << width), f"{name}: bad sum {total}"
        line = f"{gates} gates ok, {a_val} + {b_val} = {total} ok"
        if resilient:
            stats = client.stats
            line += f" ({stats.reconnects} reconnects, {stats.resubmitted} resubmitted)"
            if inject_disconnect:
                assert stats.reconnects >= 1, f"{name}: injected disconnect not exercised"
        report[name] = line


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=3, help="concurrent clients")
    parser.add_argument("--gates", type=int, default=8, help="pipelined gates per client")
    parser.add_argument("--width", type=int, default=4, help="adder bit width")
    parser.add_argument(
        "--workers", type=int, default=2, help="server worker processes (0 = inline)"
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="use an already-running server instead of spawning one",
    )
    parser.add_argument(
        "--resilient",
        action="store_true",
        help="run clients through ResilientClient and inject one disconnect",
    )
    args = parser.parse_args()

    process = None
    if args.connect:
        host, port = args.connect.rsplit(":", 1)
        port = int(port)
        print(f"connecting to {host}:{port}")
    else:
        process, port = start_server(args.workers)
        print(f"spawned tools/serve.py (pid {process.pid}, {args.workers} workers) on port {port}")

    try:
        report: dict = {}
        start = time.perf_counter()
        threads = [
            threading.Thread(
                target=run_client,
                args=(f"client{i}", 11 + 7 * i, port, args.gates, args.width, report),
                kwargs={
                    "resilient": args.resilient,
                    # Client 0 loses its connection mid-burst; the retry layer
                    # must recover it without losing or duplicating a job.
                    "inject_disconnect": args.resilient and i == 0,
                },
            )
            for i in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if len(report) != args.clients:
            raise SystemExit(f"only {len(report)}/{args.clients} clients finished")
        for name in sorted(report):
            print(f"{name}: {report[name]}")

        with ServingClient(port=port) as client:
            metrics = client.metrics()
        print(
            f"{args.clients} clients in {elapsed:.2f} s | server: "
            f"{metrics['rows_bootstrapped']} rows in {metrics['flushes']} flushes, "
            f"{metrics['bootstraps_per_sec']:.0f} bootstraps/s, "
            f"mean fill {metrics['mean_rows_per_call']:.1f} rows/call"
        )
        if args.resilient:
            print(
                f"resilience: {metrics['sessions']} sessions, "
                f"{metrics['jobs_deduped']} deduped retries, "
                f"{metrics['jobs_completed']} jobs each executed exactly once"
            )
        if "pool" in metrics:
            pool = metrics["pool"]
            print(
                f"worker pool: {pool['num_workers']} workers, "
                f"{pool['tasks_completed']} tasks, "
                f"{pool['workers_restarted']} restarts"
            )
        print("all clients verified their results")
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)


if __name__ == "__main__":
    main()

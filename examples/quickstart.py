"""Quickstart: encrypted Boolean logic with the MATCHA evaluation backend.

The client generates keys, encrypts two bits and ships the ciphertexts plus
the cloud key to the server; the server evaluates a NAND gate homomorphically
(linear combination + gate bootstrapping) and returns the result; only the
client can decrypt it.

The evaluation backend here is the one the paper proposes: the approximate
multiplication-less integer FFT with 64-bit dyadic-value-quantised twiddle
factors and bootstrapping-key unrolling (m = 2).

Run:  python examples/quickstart.py [--paper-params]

The default uses the reduced `test-small` parameter set so the pure-Python
simulator answers in seconds; pass ``--paper-params`` for the full 110-bit
setting (minutes).
"""

from __future__ import annotations

import argparse
import time

from repro import PAPER_110BIT, TEST_SMALL, decrypt_bit, encrypt_bit, generate_keys
from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.gates import TFHEGateEvaluator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-params",
        action="store_true",
        help="use the paper's 110-bit parameters instead of the fast test set",
    )
    parser.add_argument("--unroll", type=int, default=2, help="BKU factor m (default 2)")
    args = parser.parse_args()

    params = PAPER_110BIT if args.paper_params else TEST_SMALL
    print(f"Parameter set : {params.describe()}")

    # --- client side: key generation and encryption -------------------------
    transform = ApproximateNegacyclicTransform(params.N, twiddle_bits=64)
    start = time.perf_counter()
    secret_key, cloud_key = generate_keys(
        params, transform, unroll_factor=args.unroll, rng=2024
    )
    print(f"Key generation: {time.perf_counter() - start:.2f} s "
          f"(BKU m = {cloud_key.unroll_factor}, 64-bit DVQTF transform)")

    bit_a, bit_b = 1, 1
    cipher_a = encrypt_bit(secret_key, bit_a, rng=1)
    cipher_b = encrypt_bit(secret_key, bit_b, rng=2)

    # --- server side: homomorphic evaluation --------------------------------
    evaluator = TFHEGateEvaluator(cloud_key)
    start = time.perf_counter()
    cipher_out = evaluator.nand(cipher_a, cipher_b)
    gate_seconds = time.perf_counter() - start

    # --- client side: decryption --------------------------------------------
    result = decrypt_bit(secret_key, cipher_out)
    print(f"NAND({bit_a}, {bit_b}) = {result}   (expected {1 - (bit_a & bit_b)})")
    print(f"One bootstrapped gate on the functional simulator: {gate_seconds * 1e3:.1f} ms")
    print("Note: this is the pure-Python functional simulator; the paper's "
          "hardware latency/throughput numbers come from the cycle model "
          "(see examples/matcha_accelerator_model.py).")


if __name__ == "__main__":
    main()

"""Encrypted integer addition: a ripple-carry adder built from TFHE gates.

This is the kind of workload the paper's introduction motivates (general
purpose computing over encrypted data, e.g. the TFHE RISC-V processor): every
adder stage is a handful of bootstrapped XOR/AND/OR gates, and the circuit
depth is unbounded because each gate refreshes the noise.

Run:  python examples/encrypted_adder.py --width 8 --a 173 --b 94
"""

from __future__ import annotations

import argparse
import time
from typing import List

from repro import TEST_SMALL, generate_keys
from repro.tfhe.gates import TFHEGateEvaluator, decrypt_bits, encrypt_bits
from repro.tfhe.lwe import LweSample
from repro.tfhe.transform import DoubleFFTNegacyclicTransform


def ripple_carry_add(
    evaluator: TFHEGateEvaluator, a_bits: List[LweSample], b_bits: List[LweSample]
) -> List[LweSample]:
    """Add two encrypted integers (LSB first); returns width+1 encrypted bits."""
    carry = evaluator.constant(0)
    out = []
    for cipher_a, cipher_b in zip(a_bits, b_bits):
        a_xor_b = evaluator.xor(cipher_a, cipher_b)
        out.append(evaluator.xor(a_xor_b, carry))
        carry = evaluator.or_(
            evaluator.and_(cipher_a, cipher_b), evaluator.and_(a_xor_b, carry)
        )
    out.append(carry)
    return out


def to_bits(value: int, width: int) -> List[int]:
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: List[int]) -> int:
    return sum(bit << i for i, bit in enumerate(bits))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=8, help="operand width in bits")
    parser.add_argument("--a", type=int, default=173, help="first addend")
    parser.add_argument("--b", type=int, default=94, help="second addend")
    args = parser.parse_args()
    mask = (1 << args.width) - 1
    a, b = args.a & mask, args.b & mask

    params = TEST_SMALL
    transform = DoubleFFTNegacyclicTransform(params.N)
    secret_key, cloud_key = generate_keys(params, transform, unroll_factor=1, rng=7)
    evaluator = TFHEGateEvaluator(cloud_key)

    cipher_a = encrypt_bits(secret_key, to_bits(a, args.width), rng=1)
    cipher_b = encrypt_bits(secret_key, to_bits(b, args.width), rng=2)

    start = time.perf_counter()
    cipher_sum = ripple_carry_add(evaluator, cipher_a, cipher_b)
    elapsed = time.perf_counter() - start

    result = from_bits(decrypt_bits(secret_key, cipher_sum))
    gates = evaluator.counters.gates
    bootstraps = evaluator.counters.bootstraps
    print(f"{a} + {b} = {result}   (expected {a + b})")
    print(
        f"{args.width}-bit encrypted addition: {gates} gates, {bootstraps} bootstrappings, "
        f"{elapsed:.2f} s on the functional simulator "
        f"({elapsed / max(bootstraps, 1) * 1e3:.1f} ms per bootstrapped gate)"
    )
    assert result == a + b


if __name__ == "__main__":
    main()

"""Encrypted maximum: compare two encrypted integers and select the larger one.

Demonstrates a second multi-gate workload on the public API: a bit-serial
greater-than comparator followed by a MUX tree, all on ciphertexts.  The
server never learns the inputs, the comparison result, or which operand was
selected.

Run:  python examples/encrypted_comparator.py --width 4 --a 11 --b 6
"""

from __future__ import annotations

import argparse
import time
from typing import List

from repro import TEST_SMALL, generate_keys
from repro.tfhe.gates import TFHEGateEvaluator, decrypt_bit, decrypt_bits, encrypt_bits
from repro.tfhe.lwe import LweSample
from repro.tfhe.transform import DoubleFFTNegacyclicTransform


def greater_than(
    evaluator: TFHEGateEvaluator, a_bits: List[LweSample], b_bits: List[LweSample]
) -> LweSample:
    """Encrypted ``a > b`` for LSB-first bit vectors of equal width."""
    result = evaluator.constant(0)
    for cipher_a, cipher_b in zip(a_bits, b_bits):  # LSB to MSB
        bits_equal = evaluator.xnor(cipher_a, cipher_b)
        a_wins_here = evaluator.andyn(cipher_a, cipher_b)  # a AND (NOT b)
        result = evaluator.mux(bits_equal, result, a_wins_here)
    return result


def select(
    evaluator: TFHEGateEvaluator,
    condition: LweSample,
    if_true: List[LweSample],
    if_false: List[LweSample],
) -> List[LweSample]:
    """Encrypted element-wise MUX over two bit vectors."""
    return [evaluator.mux(condition, t, f) for t, f in zip(if_true, if_false)]


def to_bits(value: int, width: int) -> List[int]:
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: List[int]) -> int:
    return sum(bit << i for i, bit in enumerate(bits))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=4, help="operand width in bits")
    parser.add_argument("--a", type=int, default=11)
    parser.add_argument("--b", type=int, default=6)
    args = parser.parse_args()
    mask = (1 << args.width) - 1
    a, b = args.a & mask, args.b & mask

    params = TEST_SMALL
    secret_key, cloud_key = generate_keys(
        params, DoubleFFTNegacyclicTransform(params.N), unroll_factor=1, rng=3
    )
    evaluator = TFHEGateEvaluator(cloud_key)

    cipher_a = encrypt_bits(secret_key, to_bits(a, args.width), rng=4)
    cipher_b = encrypt_bits(secret_key, to_bits(b, args.width), rng=5)

    start = time.perf_counter()
    a_greater = greater_than(evaluator, cipher_a, cipher_b)
    cipher_max = select(evaluator, a_greater, cipher_a, cipher_b)
    elapsed = time.perf_counter() - start

    decrypted_flag = decrypt_bit(secret_key, a_greater)
    decrypted_max = from_bits(decrypt_bits(secret_key, cipher_max))
    print(f"a = {a}, b = {b}")
    print(f"encrypted (a > b)  -> {decrypted_flag}   (expected {int(a > b)})")
    print(f"encrypted max(a,b) -> {decrypted_max}   (expected {max(a, b)})")
    print(
        f"{evaluator.counters.bootstraps} bootstrapped gates in {elapsed:.2f} s "
        "on the functional simulator"
    )
    assert decrypted_max == max(a, b)


if __name__ == "__main__":
    main()

"""Level-parallel encrypted circuits: the netlist executor end to end.

A multi-gate circuit evaluated gate by gate feeds the batched bootstrapping
engine one wavefront row at a time; the netlist subsystem recovers the
parallelism the dependency structure allows.  This demo:

1. builds the ripple-carry adder and the maximum circuit as
   :class:`repro.tfhe.netlist.Circuit` netlists,
2. levelizes them with :func:`repro.tfhe.executor.schedule_circuit` and
   prints the gates-per-level profile (the paper's compile-to-DFG /
   solve-dependencies flow, applied to whole circuits),
3. runs them over a batch of encrypted words with
   :class:`repro.tfhe.executor.CircuitExecutor` — one mixed-gate batched
   bootstrapping per dependency level — and compares the wall-clock with the
   eager gate-by-gate path on the same inputs.

Outputs are bit-identical between the two paths; only the schedule differs.

Run:  PYTHONPATH=src python examples/circuit_executor.py [--width 8] [--batch 16]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import TEST_TINY, BatchGateEvaluator, CircuitExecutor, generate_keys
from repro.tfhe.circuits import decrypt_integers, encrypt_integers
from repro.tfhe.executor import execute, schedule_circuit
from repro.tfhe.netlist import adder_netlist, maximum_netlist
from repro.tfhe.transform import DoubleFFTNegacyclicTransform


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=8, help="operand width in bits")
    parser.add_argument("--batch", type=int, default=16, help="words per run")
    args = parser.parse_args()
    width, batch = args.width, args.batch

    params = TEST_TINY
    transform = DoubleFFTNegacyclicTransform(params.N)
    secret, cloud = generate_keys(params, transform, rng=1)
    print(f"Parameter set : {params.describe()}")
    print(f"Circuit width : {width} bits   word batch: {batch}")

    rng = np.random.default_rng(2)
    mask = (1 << width) - 1
    a_vals = [int(v) for v in rng.integers(0, mask + 1, batch)]
    b_vals = [int(v) for v in rng.integers(0, mask + 1, batch)]
    inputs = {
        "a": encrypt_integers(secret, a_vals, width, rng=3),
        "b": encrypt_integers(secret, b_vals, width, rng=4),
    }

    for circuit, output, expect in (
        (adder_netlist(width), "sum", [x + y for x, y in zip(a_vals, b_vals)]),
        (maximum_netlist(width), "max", [max(x, y) for x, y in zip(a_vals, b_vals)]),
    ):
        schedule = schedule_circuit(circuit)
        print(
            f"\n{circuit.name}: {schedule.gate_count} bootstrapped gates in "
            f"{schedule.depth} levels (mean width {schedule.mean_width:.2f}, "
            f"max {schedule.max_width})"
        )

        eager_eval = BatchGateEvaluator(cloud, batch_size=batch)
        start = time.perf_counter()
        eager = execute(circuit, eager_eval, inputs)[output]
        eager_s = time.perf_counter() - start

        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=batch))
        start = time.perf_counter()
        levelized = executor.run(circuit, inputs, schedule=schedule)[output]
        level_s = time.perf_counter() - start

        identical = all(
            np.array_equal(e.a, l.a) and np.array_equal(e.b, l.b)
            for e, l in zip(eager, levelized)
        )
        results = decrypt_integers(secret, levelized)
        print(
            f"  eager     : {schedule.gate_count} batched calls  {eager_s:6.2f} s"
        )
        print(
            f"  levelized : {executor.level_calls} batched calls  {level_s:6.2f} s"
            f"   speedup {eager_s / level_s:4.1f}x"
        )
        print(f"  bit-identical: {identical}   decrypts correctly: {results == expect}")
        assert identical and results == expect


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate a server's telemetry exposition: Prometheus text + trace export.

Connects to a running serving front (see ``tools/serve.py``), scrapes the
``metrics_prom`` op, and runs the strict parser
(:func:`repro.telemetry.parse_prometheus_text`) over the payload — every
line must lex, histograms must be cumulative and end in ``+Inf == _count``,
labels must round-trip.  With ``--trace-export`` it also pulls the span
ring as Chrome trace-event JSON and checks the document shape.

Exit status is 0 only when everything validates, so CI can use it as a
smoke gate:

    PYTHONPATH=src python tools/check_metrics.py --port 8470 \\
        --require fhe_requests_total --require fhe_server_uptime_seconds \\
        --trace-export

Offline mode: ``--file metrics.prom`` validates a saved scrape instead of
connecting.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.telemetry import PrometheusParseError, parse_prometheus_text  # noqa: E402


def check_text(text: str, require: list) -> int:
    """Parse one exposition payload; print a summary, return exit status."""
    try:
        families = parse_prometheus_text(text)
    except PrometheusParseError as exc:
        print(f"FAIL: line {exc.line_no}: {exc.reason}", file=sys.stderr)
        print(f"      {exc.line!r}", file=sys.stderr)
        return 1
    samples = sum(len(family["samples"]) for family in families.values())
    print(f"ok: {len(families)} metric families, {samples} samples")
    missing = [name for name in require if name not in families]
    if missing:
        print(f"FAIL: required families missing: {', '.join(missing)}", file=sys.stderr)
        print(f"      present: {', '.join(sorted(families))}", file=sys.stderr)
        return 1
    return 0


def check_chrome_trace(payload: bytes) -> int:
    """Validate a ``trace_export`` reply as Chrome trace-event JSON."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        print(f"FAIL: trace export is not valid JSON: {exc}", file=sys.stderr)
        return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print("FAIL: trace export lacks a 'traceEvents' list", file=sys.stderr)
        return 1
    for i, event in enumerate(events):
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in event:
                print(f"FAIL: traceEvents[{i}] missing {key!r}", file=sys.stderr)
                return 1
        if event["ph"] != "X":
            print(f"FAIL: traceEvents[{i}] phase {event['ph']!r} != 'X'", file=sys.stderr)
            return 1
    print(f"ok: trace export carries {len(events)} complete events")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1", help="serving front address")
    parser.add_argument("--port", type=int, default=8470, help="serving front port")
    parser.add_argument(
        "--file",
        default=None,
        help="validate this saved exposition file instead of connecting",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="FAMILY",
        help="fail unless this metric family is present (repeatable)",
    )
    parser.add_argument(
        "--trace-export",
        action="store_true",
        help="also pull trace_export and validate the Chrome trace-event JSON",
    )
    args = parser.parse_args(argv)

    if args.file is not None:
        text = pathlib.Path(args.file).read_text(encoding="utf-8")
        return check_text(text, args.require)

    from repro.runtime.protocol import ServingClient  # noqa: E402

    with ServingClient(args.host, args.port, timeout=30.0) as client:
        _, body = client.call("metrics_prom")
        status = check_text(body.decode("utf-8"), args.require)
        if args.trace_export:
            _, trace_body = client.call("trace_export")
            status = check_chrome_trace(trace_body) or status
    return status


if __name__ == "__main__":
    sys.exit(main())

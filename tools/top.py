#!/usr/bin/env python3
"""``top`` for the serving front: a plain-text live telemetry dashboard.

Polls a running server's ``metrics_prom`` (Prometheus text) and ``metrics``
(JSON snapshot) ops and redraws a compact status block: throughput
(bootstraps/sec, jobs completed), flush latency quantiles estimated from
the ``fhe_flush_seconds`` histogram, worker-pool health (workers alive,
breaker state, restarts, retries), engine failovers, and the busiest
sessions.  No curses — just ANSI clear-screen between refreshes, so it
works in any terminal and in CI logs (``--once`` prints a single frame
and exits).

Run:  PYTHONPATH=src python tools/top.py --port 8470 --interval 2
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.telemetry import parse_prometheus_text  # noqa: E402


def _series(families, name):
    """{frozenset(labels.items()): value} for one family (empty if absent)."""
    family = families.get(name)
    if family is None:
        return {}
    out = {}
    for sample_name, labels, value in family["samples"]:
        if sample_name == name:
            out[frozenset(labels.items())] = value
    return out


def _scalar(families, name, default=0.0):
    values = _series(families, name)
    return sum(values.values()) if values else default


def histogram_quantile(families, name, q):
    """Estimate quantile ``q`` from a family's cumulative buckets.

    Linear interpolation inside the bucket that crosses the target rank —
    the same estimate ``histogram_quantile()`` makes in PromQL.  Returns
    ``None`` when the histogram is absent or empty.
    """
    family = families.get(name)
    if family is None:
        return None
    buckets = []
    count = 0.0
    for sample_name, labels, value in family["samples"]:
        if sample_name == name + "_bucket":
            le = labels.get("le", "+Inf")
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.append((bound, value))
        elif sample_name == name + "_count":
            count = value
    if not buckets or count <= 0:
        return None
    buckets.sort(key=lambda item: item[0])
    rank = q * count
    previous_bound, previous_cum = 0.0, 0.0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if bound == float("inf"):
                return previous_bound
            width = bound - previous_bound
            inside = cumulative - previous_cum
            if inside <= 0:
                return bound
            return previous_bound + width * (rank - previous_cum) / inside
    return buckets[-1][0]


def render_frame(families, snapshot):
    """One dashboard frame as a list of lines."""
    uptime = _scalar(families, "fhe_server_uptime_seconds")
    busy = _scalar(families, "fhe_server_busy_seconds_total")
    rows = _scalar(families, "fhe_rows_bootstrapped_total")
    flushes = _scalar(families, "fhe_flushes_total")
    submitted = _scalar(families, "fhe_jobs_submitted_total")
    completed = _scalar(families, "fhe_jobs_completed_total")
    p50 = histogram_quantile(families, "fhe_flush_seconds", 0.50)
    p99 = histogram_quantile(families, "fhe_flush_seconds", 0.99)
    workers = _scalar(families, "fhe_pool_workers_alive", default=-1.0)
    breaker = _scalar(families, "fhe_pool_breaker_open", default=0.0)
    restarts = _scalar(families, "fhe_pool_worker_restarts_total")
    retried = _scalar(families, "fhe_pool_tasks_retried_total")
    failovers = _scalar(families, "fhe_engine_failovers_total")
    deduped = _scalar(families, "fhe_jobs_deduped_total")
    shed = _scalar(families, "fhe_jobs_shed_total")

    bps = rows / busy if busy > 0 else 0.0
    busy_pct = 100.0 * busy / uptime if uptime > 0 else 0.0

    def fmt_latency(value):
        return f"{value * 1e3:8.2f}ms" if value is not None else "       --"

    lines = [
        f"fhe-top  up {uptime:8.1f}s  busy {busy_pct:5.1f}%  "
        f"conns {int(_scalar(families, 'fhe_connections')):4d}  "
        f"sessions {int(_scalar(families, 'fhe_sessions_active')):4d}  "
        f"draining {'yes' if _scalar(families, 'fhe_server_draining') else 'no':3s}",
        f"work     bootstraps/sec {bps:10.1f}   rows {int(rows):10d}   "
        f"flushes {int(flushes):8d}   jobs {int(completed)}/{int(submitted)}",
        f"latency  flush p50 {fmt_latency(p50)}   p99 {fmt_latency(p99)}   "
        f"queue {int(_scalar(families, 'fhe_queue_depth')):4d}   "
        f"awaiting {int(_scalar(families, 'fhe_awaiting_results')):4d}",
        f"pool     workers {int(workers) if workers >= 0 else '--':>4}   "
        f"breaker {'OPEN' if breaker else 'closed':6s}   "
        f"restarts {int(restarts):4d}   task retries {int(retried):4d}   "
        f"failovers {int(failovers):3d}",
        f"shield   deduped {int(deduped):6d}   shed {int(shed):6d}",
    ]
    top_sessions = (snapshot or {}).get("top_sessions") or []
    if top_sessions:
        busiest = "   ".join(
            f"{entry['client']}:{entry['jobs']}" for entry in top_sessions
        )
        lines.append(f"sessions {busiest}")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1", help="serving front address")
    parser.add_argument("--port", type=int, default=8470, help="serving front port")
    parser.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    parser.add_argument(
        "--once", action="store_true", help="print one frame and exit (CI mode)"
    )
    args = parser.parse_args(argv)

    from repro.runtime.protocol import ServingClient  # noqa: E402

    with ServingClient(args.host, args.port, timeout=30.0) as client:
        while True:
            _, body = client.call("metrics_prom")
            families = parse_prometheus_text(body.decode("utf-8"))
            snapshot = client.metrics()
            frame = render_frame(families, snapshot)
            if not args.once:
                sys.stdout.write("\x1b[2J\x1b[H")
            print("\n".join(frame), flush=True)
            if args.once:
                return 0
            time.sleep(args.interval)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        sys.exit(0)

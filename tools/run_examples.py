#!/usr/bin/env python3
"""Run every ``examples/*.py`` as a smoke test (the docs/examples CI job).

Each example is executed in a subprocess with ``PYTHONPATH=src`` and — where
the script accepts them — reduced arguments, so the whole sweep finishes in
about a minute while still exercising real key generation, encryption and
gate evaluation.  A non-zero exit code from any example fails the run.

Run:  python tools/run_examples.py [--timeout 300]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Reduced command-line arguments per example (keeps CI wall-clock small).
SMOKE_ARGS = {
    "encrypted_adder.py": ["--width", "4", "--a", "9", "--b", "5"],
    "encrypted_comparator.py": ["--width", "4"],
    "batched_gates.py": ["--batch", "16"],
    "circuit_executor.py": ["--width", "6", "--batch", "8"],
    "encrypted_calculator.py": ["--width", "4", "--a", "13", "--b", "10"],
    "runtime_server.py": ["--width", "4", "--sessions", "2"],
    "serving_clients.py": ["--clients", "2", "--gates", "4", "--workers", "2"],
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="per-example timeout (s)"
    )
    args = parser.parse_args()

    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    examples = sorted((ROOT / "examples").glob("*.py"))
    if not examples:
        print("no examples found", file=sys.stderr)
        return 1

    failures = []
    for example in examples:
        command = [sys.executable, str(example), *SMOKE_ARGS.get(example.name, [])]
        print(f"==> {example.name} {' '.join(SMOKE_ARGS.get(example.name, []))}")
        start = time.perf_counter()
        try:
            result = subprocess.run(
                command, cwd=ROOT, env=env, timeout=args.timeout
            )
        except subprocess.TimeoutExpired:
            print(f"    TIMEOUT after {args.timeout:.0f}s")
            failures.append(example.name)
            continue
        elapsed = time.perf_counter() - start
        if result.returncode != 0:
            print(f"    FAILED (exit {result.returncode})")
            failures.append(example.name)
        else:
            print(f"    ok ({elapsed:.1f}s)")

    if failures:
        print(f"\n{len(failures)} example(s) failed: {', '.join(failures)}")
        return 1
    print(f"\nall {len(examples)} examples passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Start the repro-tfhe serving front: asyncio sockets + bootstrap workers.

Binds an :class:`repro.runtime.server.FheServer` and (optionally) a
:class:`repro.runtime.workers.WorkerPool` that shards every flush's
bootstrapping rows across worker processes sharing the cloud-key spectrum
cache via shared memory.  Clients connect with
:class:`repro.runtime.protocol.ServingClient`, upload their cloud key, and
exchange npz/JSON artifacts over length-prefixed frames — see
``examples/serving_clients.py`` for the client side.

Run:  PYTHONPATH=src python tools/serve.py --port 8470 --workers 4
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.runtime.server import serve  # noqa: E402
from repro.runtime.workers import WorkerPool  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument("--port", type=int, default=8470, help="listen port (0 = pick free)")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="bootstrap worker processes (0 = execute flushes inline)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=60.0,
        help="seconds before a hung worker is killed and its task requeued",
    )
    parser.add_argument(
        "--max-pending-jobs",
        type=int,
        default=1024,
        help="scheduler queue bound; submissions past it get 'busy' errors",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="per-connection concurrent-request bound (TCP backpressure past it)",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        default=0.002,
        help="coalescing window (s) between first queued job and its flush",
    )
    parser.add_argument(
        "--max-rows-per-call",
        type=int,
        default=None,
        help="chunk bound for one batched bootstrapping call",
    )
    parser.add_argument(
        "--engine",
        default=None,
        help=(
            "transform engine for registered keys: a registry kind "
            "(double, compiled, cupy, ...), 'auto' to pick the best "
            "available backend per key, or omit to honour each key's "
            "recorded spec"
        ),
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help=(
            "graceful-drain bound (s) on SIGTERM/SIGINT: accepted jobs are "
            "flushed and clients notified before exit; a second signal "
            "force-stops immediately"
        ),
    )
    parser.add_argument(
        "--list-engines",
        action="store_true",
        help="print every registered engine backend (with availability) and exit",
    )
    args = parser.parse_args(argv)

    from repro.tfhe.transform import available_engines, describe_engines

    if args.list_engines:
        for line in describe_engines():
            print(line)
        return 0
    if args.engine is not None and args.engine != "auto":
        engines = available_engines()
        if args.engine not in engines:
            parser.error(
                f"unknown engine {args.engine!r}; registered engines: "
                + ", ".join(engines)
            )
        if engines[args.engine] is not None:
            parser.error(
                f"engine {args.engine!r} is unavailable here: "
                f"{engines[args.engine]} (see --list-engines)"
            )

    pool = (
        WorkerPool(args.workers, task_timeout=args.task_timeout)
        if args.workers > 0
        else None
    )
    try:
        asyncio.run(
            serve(
                dispatcher=pool,
                host=args.host,
                port=args.port,
                max_pending_jobs=args.max_pending_jobs,
                max_inflight=args.max_inflight,
                flush_interval=args.flush_interval,
                max_rows_per_call=args.max_rows_per_call,
                engine=args.engine,
                drain_timeout=args.drain_timeout,
            )
        )
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        if pool is not None:
            pool.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

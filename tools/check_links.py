#!/usr/bin/env python3
"""Fail on broken intra-repo Markdown links.

Scans every tracked ``*.md`` file for inline links and checks that relative
targets exist on disk (anchors and external ``http(s)``/``mailto`` links are
ignored).  Used by the docs/examples CI job so README and docs pages can't
silently drift from the file layout.

Run:  python tools/check_links.py [root]
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline Markdown links: [text](target) — images share the same syntax.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".hypothesis", "node_modules"}
#: Auto-generated paper/snippet dumps reference figures that were never part
#: of the retrieval; only hand-written docs are link-checked.
SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}
EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if path.name in SKIP_FILES:
            continue
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: pathlib.Path, root: pathlib.Path) -> list:
    errors = []
    for match in LINK_RE.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            errors.append(f"{path}: link escapes the repository: {target}")
            continue
        if not resolved.exists():
            errors.append(f"{path}: broken link: {target}")
    return errors


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    errors = []
    checked = 0
    for path in iter_markdown(root):
        checked += 1
        errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} markdown files: {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

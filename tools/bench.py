#!/usr/bin/env python3
"""Unified benchmark runner for the machine-readable perf trajectory.

Every registered benchmark measures bootstraps/sec against a baseline and
writes ``results/BENCH_<name>.json`` in the shared ``repro-bench/1`` schema
(engine, batch width, bootstraps/sec, speedup, git rev — see
:mod:`repro.utils.benchio`), so the perf trajectory stays diffable across
PRs regardless of which bench produced a number.

Run:      PYTHONPATH=src python tools/bench.py [name ...]   # default: all
List:     python tools/bench.py --list
Validate: python tools/bench.py --validate                  # existing BENCH_*.json
"""

from __future__ import annotations

import argparse
import importlib.util
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.utils import benchio  # noqa: E402


def _load_benchmark_module(filename: str):
    path = ROOT / "benchmarks" / filename
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_external_product() -> None:
    _load_benchmark_module("bench_external_product.py").run()


def _run_compiler() -> None:
    _load_benchmark_module("bench_compiler.py").run()


def _run_pbs() -> None:
    _load_benchmark_module("bench_programmable_bootstrap.py").run()


def _run_batch_throughput() -> None:
    _load_benchmark_module("bench_batch_throughput.py").run()


def _run_circuit_levels() -> None:
    _load_benchmark_module("bench_circuit_levels.py").run()


def _run_serving() -> None:
    _load_benchmark_module("bench_serving.py").run()


def _run_engines() -> None:
    _load_benchmark_module("bench_engines.py").run()


def _run_telemetry() -> None:
    _load_benchmark_module("bench_telemetry_overhead.py").run()


#: name -> zero-argument runner writing results/BENCH_<name>.json.
#: (`runtime` is produced by the pytest-driven scheduler bench; it is
#: validated here but executed through pytest because it needs fixtures.)
BENCHES = {
    "batch_throughput": _run_batch_throughput,
    "circuit_levels": _run_circuit_levels,
    "compiler": _run_compiler,
    "engines": _run_engines,
    "external_product": _run_external_product,
    "pbs": _run_pbs,
    "serving": _run_serving,
    "telemetry": _run_telemetry,
}


def validate_all() -> int:
    results = ROOT / "results"
    paths = sorted(results.glob("BENCH_*.json"))
    if not paths:
        print("no results/BENCH_*.json files found", file=sys.stderr)
        return 1
    status = 0
    for path in paths:
        try:
            benchio.validate_file(path)
            print(f"ok      {path.relative_to(ROOT)}")
        except (ValueError, KeyError, OSError) as error:
            print(f"INVALID {path.relative_to(ROOT)}: {error}", file=sys.stderr)
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="*", help="benchmarks to run (default: all)")
    parser.add_argument("--list", action="store_true", help="list registered benchmarks")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate existing results/BENCH_*.json files against the schema",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(BENCHES):
            print(name)
        return 0
    if args.validate:
        return validate_all()

    names = args.names or sorted(BENCHES)
    for name in names:
        if name not in BENCHES:
            print(
                f"unknown benchmark {name!r} (known: {', '.join(sorted(BENCHES))})",
                file=sys.stderr,
            )
            return 2
        print(f"== {name} ==")
        BENCHES[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Generate a TFHE keypair and save it with :mod:`repro.tfhe.serialize`.

The client-side half of the runtime's client/server story: generate a secret
key plus the matching cloud key and write both as versioned ``.npz`` archives
the server can load (see ``examples/runtime_server.py``).

Run:  PYTHONPATH=src python tools/keygen.py --params test-small --out-dir keys/
"""

from __future__ import annotations

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.tfhe.keys import generate_keys  # noqa: E402
from repro.tfhe.params import PARAMETER_SETS  # noqa: E402
from repro.tfhe.serialize import save_cloud_key, save_secret_key  # noqa: E402
from repro.tfhe.transform import available_engines, make_transform  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--params",
        default="test-small",
        choices=sorted(PARAMETER_SETS),
        help="named TFHE parameter set (default: test-small)",
    )
    parser.add_argument(
        "--engine",
        default="double",
        choices=sorted(available_engines()),
        help=(
            "transform engine recorded in the cloud key (default: double); "
            "registered-but-unavailable backends fail with their reason"
        ),
    )
    parser.add_argument(
        "--twiddle-bits",
        type=int,
        default=None,
        help="DVQTF bit-width (approx engine only)",
    )
    parser.add_argument(
        "--unroll",
        type=int,
        default=1,
        help="BKU unroll factor m (1 = classical blind rotation)",
    )
    parser.add_argument("--seed", type=int, default=None, help="deterministic RNG seed")
    parser.add_argument(
        "--out-dir",
        type=pathlib.Path,
        default=pathlib.Path("keys"),
        help="output directory (created if missing; default: keys/)",
    )
    parser.add_argument(
        "--prefix", default="client", help="file-name prefix (default: client)"
    )
    args = parser.parse_args(argv)

    params = PARAMETER_SETS[args.params]
    engine_kwargs = {}
    if args.twiddle_bits is not None:
        if args.engine != "approx":
            parser.error("--twiddle-bits only applies to the approx engine")
        engine_kwargs["twiddle_bits"] = args.twiddle_bits
    transform = make_transform(args.engine, params.N, **engine_kwargs)

    print(f"generating keys: {params.describe()}")
    print(f"engine={args.engine} unroll_factor={args.unroll} seed={args.seed}")
    # eager=False: this tool only serializes the coefficient-domain key; the
    # loading FheContext rebuilds the spectrum cache on the server.
    secret, cloud = generate_keys(
        params, transform, unroll_factor=args.unroll, rng=args.seed, eager=False
    )

    args.out_dir.mkdir(parents=True, exist_ok=True)
    secret_path = args.out_dir / f"{args.prefix}.secret.npz"
    cloud_path = args.out_dir / f"{args.prefix}.cloud.npz"
    save_secret_key(secret_path, secret)
    save_cloud_key(cloud_path, cloud)
    for path in (secret_path, cloud_path):
        print(f"wrote {path} ({path.stat().st_size / 1024:.1f} KiB)")
    print("keep the .secret.npz private; ship only the .cloud.npz to the server")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

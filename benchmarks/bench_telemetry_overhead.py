"""Telemetry overhead: the observability tax on scheduler throughput.

The PR-10 tentpole threads a metrics registry and a span tracer through the
hot flush path (``BatchScheduler.flush`` → ``execute_rows`` → the batched
bootstrapping).  The design contract is *zero cost when disabled and noise
when enabled*: every instrumentation site is guarded by a ``telemetry is
None`` check, and the enabled path only touches dict counters and a bounded
deque — microseconds against the milliseconds one bootstrapped row costs.

This bench holds the contract to a number.  The same gate workload is
flushed through

* a **bare** scheduler (``telemetry=None`` — every guard short-circuits),
* a **full** one (metrics + tracing, every job carrying a trace id, the
  exact configuration ``tools/serve.py`` runs with),

and the full path must keep at least ``1 - TELEMETRY_OVERHEAD_MAX`` of the
bare throughput (default floor: 5% overhead, env-overridable).  Timings
are best-of-``BEST_OF`` over a freshly filled queue each round, so the
comparison sees identical rows either way.

Results land in ``results/BENCH_telemetry.json`` (``repro-bench/1``
schema); the measured overhead fraction is in the ``extra`` block.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py -q -s
"""

from __future__ import annotations

import gc
import os
import time

from repro.runtime.scheduler import BatchScheduler
from repro.telemetry import Telemetry
from repro.tfhe.gates import encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import TEST_MEDIUM
from repro.tfhe.transform import DoubleFFTNegacyclicTransform
from repro.utils.benchio import make_entry, write_bench_json

#: TEST_MEDIUM (not tiny): each flush must be dominated by real bootstrap
#: work — the production ratio the 5% contract is about — or GC-cycle and
#: timing noise on a milliseconds-long flush swamps the microseconds being
#: measured.  (Telemetry's per-job cost is fixed; the paper's 110-bit
#: parameters make it proportionally ~30x smaller still.)
JOBS = 32
BEST_OF = 8
#: Maximum tolerated throughput loss with telemetry fully on (fraction).
TELEMETRY_OVERHEAD_MAX = float(os.environ.get("TELEMETRY_OVERHEAD_MAX", "0.05"))


def _one_round(scheduler, operands, traced: bool, round_no: int) -> float:
    """Wall clock of one fill-and-flush round of ``JOBS`` gates.

    Each timed round starts from a freshly collected heap: a generational
    GC pass landing inside one config's round but not the other's would
    read as milliseconds of phantom overhead.  (The *steady* allocation
    cost of telemetry still shows — only the collection-schedule luck is
    normalised away.)
    """
    session = scheduler.session("bench")
    gc.collect()
    start = time.perf_counter()
    for i, (ca, cb) in enumerate(operands):
        if traced:
            session.submit_gate("nand", ca, cb, trace_id=f"r{round_no}-{i}")
        else:
            session.submit_gate("nand", ca, cb)
    scheduler.flush()
    return time.perf_counter() - start


def run(record_result=None):
    params = TEST_MEDIUM
    secret, cloud = generate_keys(
        params,
        DoubleFFTNegacyclicTransform(params.N),
        unroll_factor=1,
        rng=42,
        eager=False,
    )
    operands = [
        (encrypt_bit(secret, i & 1, rng=7000 + 2 * i),
         encrypt_bit(secret, (i >> 1) & 1, rng=7001 + 2 * i))
        for i in range(JOBS)
    ]

    bare = BatchScheduler()
    bare.register_client("bench", cloud)
    telemetry = Telemetry()
    full = BatchScheduler(telemetry=telemetry)
    full.register_client("bench", cloud)

    # Interleaved rounds (bare, full, bare, full, ...) so slow machine
    # phases — CI noisy neighbours, thermal dips — hit both configs alike
    # instead of masquerading as telemetry overhead; best-of compares the
    # cleanest round of each.
    _one_round(bare, operands, False, 0)  # warm-ups: spectrum caches, JIT-warm numpy
    _one_round(full, operands, True, 0)
    bare_best = full_best = float("inf")
    for round_no in range(1, BEST_OF + 1):
        bare_best = min(bare_best, _one_round(bare, operands, False, round_no))
        full_best = min(full_best, _one_round(full, operands, True, round_no))

    bare_bs = JOBS / bare_best
    full_bs = JOBS / full_best
    overhead = 1.0 - full_bs / bare_bs

    entries = [
        make_entry(
            label="telemetry-off",
            engine="double",
            params=params.name,
            batch_width=JOBS,
            bootstraps_per_sec=bare_bs,
            baseline_bootstraps_per_sec=bare_bs,
        ),
        make_entry(
            label="telemetry-on",
            engine="double",
            params=params.name,
            batch_width=JOBS,
            bootstraps_per_sec=full_bs,
            baseline_bootstraps_per_sec=bare_bs,
        ),
    ]
    snapshot = telemetry.registry.snapshot()
    extra = {
        "jobs_per_flush": JOBS,
        "best_of": BEST_OF,
        "overhead_fraction": overhead,
        "overhead_max": TELEMETRY_OVERHEAD_MAX,
        "seconds": {"telemetry-off": bare_best, "telemetry-on": full_best},
        "spans_recorded": len(telemetry.tracer.spans()),
        "metric_families": len(snapshot),
    }

    lines = [
        f"Telemetry overhead, {JOBS} NAND jobs per flush, double-FFT engine, "
        f"{params.name} (n={params.n}, N={params.N})",
        "",
        f"{'config':>14} {'seconds':>8} {'bs/sec':>8} {'vs off':>8}",
        f"{'telemetry-off':>14} {bare_best:>8.3f} {bare_bs:>8.1f} {'-':>8}",
        f"{'telemetry-on':>14} {full_best:>8.3f} {full_bs:>8.1f} "
        f"{full_bs / bare_bs:>7.2f}x",
        "",
        f"overhead {overhead * 100.0:+.1f}% with metrics + per-job tracing on "
        f"(floor: <= {TELEMETRY_OVERHEAD_MAX * 100.0:.0f}%)",
        f"{extra['spans_recorded']} spans in the ring, "
        f"{extra['metric_families']} metric families after the run; "
        f"best-of-{BEST_OF}, warm-up round untimed.",
    ]
    if record_result is not None:
        record_result("telemetry", "\n".join(lines))
    else:
        print("\n".join(lines))

    path = write_bench_json("telemetry", entries, extra=extra)
    print(f"[written to {path}]")
    return entries, extra


def test_telemetry_overhead(record_result):
    _, extra = run(record_result)
    assert extra["overhead_fraction"] <= extra["overhead_max"], (
        f"telemetry costs {extra['overhead_fraction'] * 100.0:.1f}% of scheduler "
        f"throughput (floor {extra['overhead_max'] * 100.0:.0f}%) — an "
        "instrumentation site is on the hot path without a guard"
    )


if __name__ == "__main__":
    run()

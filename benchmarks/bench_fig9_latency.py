"""Figure 9: NAND gate latency across platforms and BKU factors.

Paper reference points: CPU 13.1 ms (m=1) improving to 6.67 ms (m=2) and then
regressing; GPU 0.37 ms (m=1) improving to 0.18 ms (m=4); MATCHA's best latency
at m = 3 in the same sub-millisecond regime as the GPU; FPGA/ASIC above 6.8 ms
and restricted to m = 1.
"""

import math

from repro.analysis.comparison import platform_comparison, render_figure9


def test_fig9_latency_comparison(benchmark, record_result):
    result = benchmark.pedantic(platform_comparison, rounds=1, iterations=1)

    cpu = {r.unroll_factor: r.gate_latency_ms for r in result.reports["CPU"]}
    gpu = {r.unroll_factor: r.gate_latency_ms for r in result.reports["GPU"]}
    matcha = {r.unroll_factor: r.gate_latency_ms for r in result.reports["MATCHA"]}
    fpga = result.at("FPGA", 1).gate_latency_ms
    asic = result.at("ASIC", 1).gate_latency_ms

    # CPU: anchored at 13.1 ms, best at m = 2, worse beyond.
    assert math.isclose(cpu[1], 13.1, rel_tol=0.01)
    assert 0.40 <= result.cpu_bku_latency_reduction <= 0.55
    assert cpu[3] > cpu[2] and cpu[4] > cpu[3]
    # GPU: monotone improvement, 0.37 ms -> ~0.18 ms.
    assert math.isclose(gpu[1], 0.37, rel_tol=0.01)
    assert gpu[4] < 0.25
    # MATCHA: sub-millisecond, best at m = 3, m = 4 regresses.
    assert result.matcha_best_latency_unroll == 3
    assert matcha[3] < 0.5
    assert matcha[4] > matcha[3]
    # TVE baselines: millisecond-class, no BKU.
    assert fpga > 5.0 and asic > 5.0
    assert not result.at("FPGA", 2).supported

    record_result("fig9_latency", render_figure9(result))

"""Figure 10: NAND gate throughput (gates/s) across platforms and BKU factors.

Paper reference points: CPU with BKU (m = 2) overtakes the FPGA/ASIC baselines;
GPU and MATCHA are orders of magnitude above them; MATCHA's best throughput is
2.3x the GPU's (our model reproduces the win with a larger margin; see
EXPERIMENTS.md for the discussion).
"""

from repro.analysis.comparison import platform_comparison, render_figure10


def test_fig10_throughput_comparison(benchmark, record_result):
    result = benchmark.pedantic(platform_comparison, rounds=1, iterations=1)

    cpu_m2 = result.at("CPU", 2).throughput_gates_per_s
    fpga = result.at("FPGA", 1).throughput_gates_per_s
    asic = result.at("ASIC", 1).throughput_gates_per_s
    gpu_best = result.best("GPU").throughput_gates_per_s
    matcha_best = result.best("MATCHA").throughput_gates_per_s

    # Orderings reported in Section 6.
    assert cpu_m2 > fpga
    assert asic > fpga
    assert gpu_best > asic
    assert matcha_best > 1.5 * gpu_best  # paper: 2.3x
    # MATCHA's throughput peaks at m = 3 (BK streaming caps m = 4).
    matcha_by_m = {r.unroll_factor: r.throughput_gates_per_s for r in result.reports["MATCHA"]}
    assert max(matcha_by_m, key=matcha_by_m.get) == 3

    text = render_figure10(result)
    text += f"\nMATCHA best vs GPU best: {result.matcha_vs_gpu_throughput:.2f}x (paper: 2.3x)"
    record_result("fig10_throughput", text)

"""Functional-simulator gate latency across evaluation backends.

This is not a paper figure by itself; it measures the pure-Python functional
simulator (reduced parameters) so the repository's own performance can be
tracked, and it confirms the qualitative per-backend ordering: the exact
quadratic engine is the slowest per gate on non-tiny rings, the double FFT the
fastest, the approximate integer FFT in between (its butterflies are emulated
rather than executed by hardware shifters).
"""

import pytest

from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.gates import TFHEGateEvaluator, decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import TEST_SMALL
from repro.tfhe.transform import DoubleFFTNegacyclicTransform


@pytest.fixture(scope="module")
def double_backend():
    transform = DoubleFFTNegacyclicTransform(TEST_SMALL.N)
    secret, cloud = generate_keys(TEST_SMALL, transform, unroll_factor=1, rng=1)
    return secret, TFHEGateEvaluator(cloud)


@pytest.fixture(scope="module")
def approx_backend():
    transform = ApproximateNegacyclicTransform(TEST_SMALL.N, twiddle_bits=64)
    secret, cloud = generate_keys(TEST_SMALL, transform, unroll_factor=2, rng=2)
    return secret, TFHEGateEvaluator(cloud)


def test_nand_gate_double_fft_backend(benchmark, double_backend):
    secret, evaluator = double_backend
    ca, cb = encrypt_bit(secret, 1, rng=3), encrypt_bit(secret, 1, rng=4)
    result = benchmark(evaluator.nand, ca, cb)
    assert decrypt_bit(secret, result) == 0


def test_nand_gate_matcha_backend(benchmark, approx_backend):
    secret, evaluator = approx_backend
    ca, cb = encrypt_bit(secret, 1, rng=5), encrypt_bit(secret, 0, rng=6)
    result = benchmark(evaluator.nand, ca, cb)
    assert decrypt_bit(secret, result) == 1


def test_xor_gate_matcha_backend(benchmark, approx_backend):
    secret, evaluator = approx_backend
    ca, cb = encrypt_bit(secret, 1, rng=7), encrypt_bit(secret, 1, rng=8)
    result = benchmark(evaluator.xor, ca, cb)
    assert decrypt_bit(secret, result) == 0

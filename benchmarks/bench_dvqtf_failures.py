"""Section 4.3: DVQTF bit-width vs decryption-failure budget.

The paper reports that 38-bit DVQTFs produce no decryption failure in 10^8
gates at small unroll factors, while m = 5 needs the full 64-bit DVQTFs.  This
bench measures the approximate-transform error at several bit-widths, compares
it against the noise budget at m = 2 and m = 5, and additionally runs a small
functional Monte-Carlo with deliberately coarse twiddles to show actual
decryption failures appearing.
"""

from repro.analysis.noise_tables import dvqtf_failure_study, render_dvqtf_study
from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.gates import PLAINTEXT_GATES, TFHEGateEvaluator, decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import TEST_SMALL


def test_dvqtf_budget_study(benchmark, record_result):
    rows = benchmark.pedantic(
        lambda: dvqtf_failure_study(degree=1024, trials=1, rng=0), rounds=1, iterations=1
    )
    by_key = {(r.unroll_factor, r.twiddle_bits): r for r in rows}
    # Wide DVQTFs are safe at every unroll factor; very narrow ones are not.
    assert by_key[(2, 64)].safe and by_key[(5, 64)].safe
    assert not by_key[(2, 16)].safe and not by_key[(5, 16)].safe
    # The error budget shrinks as m grows (total headroom, Section 4.3).
    assert by_key[(2, 64)].expected_failures_per_1e8_gates <= 1.0
    record_result("dvqtf_failure_study", render_dvqtf_study(rows))


def test_dvqtf_functional_failures_with_coarse_twiddles(benchmark, record_result):
    """Functional evidence: 8-bit twiddles break gates, 64-bit twiddles do not."""

    def run_study():
        outcomes = []
        for bits in (8, 64):
            transform = ApproximateNegacyclicTransform(TEST_SMALL.N, twiddle_bits=bits)
            secret, cloud = generate_keys(TEST_SMALL, transform, unroll_factor=1, rng=9)
            evaluator = TFHEGateEvaluator(cloud)
            failures = 0
            trials = 0
            for a in (0, 1):
                for b in (0, 1):
                    ca = encrypt_bit(secret, a, rng=10 + a)
                    cb = encrypt_bit(secret, b, rng=20 + b)
                    got = decrypt_bit(secret, evaluator.nand(ca, cb))
                    failures += got != PLAINTEXT_GATES["nand"](a, b)
                    trials += 1
            outcomes.append((bits, failures, trials))
        return outcomes

    outcomes = benchmark.pedantic(run_study, rounds=1, iterations=1)
    text = "\n".join(
        f"twiddle bits = {bits:2d}: {failures}/{trials} gate decryption failures"
        for bits, failures, trials in outcomes
    )
    record_result("dvqtf_functional_failures", text)
    assert outcomes[0][1] > 0  # coarse twiddles fail
    assert outcomes[1][1] == 0  # 64-bit DVQTFs never fail

"""Figure 3: the multiplication-less lifting butterfly.

Reports the shift/add cost of dyadic-value-quantised lifting coefficients
(the paper's 9/128 example expands into two shifters) and times the vectorised
lifting rotation used inside every butterfly stage.
"""

import numpy as np

from repro.core.lifting import DyadicCoefficient, LiftingRotationArray
from repro.utils.tables import format_table


def test_fig3_shift_add_costs(benchmark, record_result):
    def build_rows():
        rows = []
        for value, beta in ((9 / 128, 7), (0.3826834, 16), (0.7071068, 32), (0.9238795, 64)):
            coeff = DyadicCoefficient.from_float(value, beta)
            rows.append(
                [
                    f"{value:.7f}",
                    beta,
                    coeff.adder_count(),
                    f"{coeff.quantisation_error(value):.2e}",
                ]
            )
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        ["coefficient", "beta (bits)", "shift/add terms", "quantisation error"],
        rows,
        title="Figure 3: lifting coefficients realised with adders and shifters only.",
    )
    record_result("fig3_lifting", text)


def test_fig3_lifting_rotation_throughput(benchmark):
    """Throughput of one vectorised lifting-rotation stage (512 butterflies)."""
    angles = 2.0 * np.pi * np.arange(256) / 512
    rotation = LiftingRotationArray(angles, beta=64)
    re = np.round(np.random.default_rng(0).uniform(-1e9, 1e9, 256))
    im = np.round(np.random.default_rng(1).uniform(-1e9, 1e9, 256))
    out_re, out_im = benchmark(rotation.forward, re, im)
    assert out_re.shape == re.shape and out_im.shape == im.shape

"""Cross-session scheduler throughput: coalesced vs per-session sequential.

PR 1 made the batch axis cheap and PR 2 filled it from inside one circuit;
the runtime scheduler fills it from *across sessions*: sixteen clients
submitting one gate each become one mixed-gate batched bootstrapping instead
of sixteen scalar ones.  This bench measures exactly that:

* **sequential** — every session evaluates its own job immediately through
  the shared context's scalar evaluator (one bootstrapping per job, the
  pre-scheduler serving model);
* **coalesced** — the same jobs are submitted to a :class:`BatchScheduler`
  and flushed once (same-key jobs share mixed-gate batched bootstraps).

Both paths share one cloud key and one spectrum cache, so the delta is purely
the cross-session coalescing.  A second table repeats the experiment with
whole adder-circuit jobs, whose dependency levels advance in lockstep across
sessions.

Acceptance gate: 16 coalesced single-gate sessions must reach >= 2.5x the
sequential bootstraps/sec (override with RUNTIME_SPEEDUP_MIN; CI shared
runners are timing-noisy; the bar was 4x until the PR4 fused external product
made the sequential baseline itself ~4x faster).  Alongside
``results/runtime_scheduler.txt`` the bench writes machine-readable
``results/BENCH_runtime.json`` in the shared ``repro-bench/1`` schema.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_runtime_scheduler.py -q -s
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.runtime import BatchScheduler, FheContext
from repro.utils.benchio import make_entry, write_bench_json
from repro.tfhe.circuits import bits_to_int, encrypt_integer
from repro.tfhe.executor import schedule_circuit
from repro.tfhe.gates import PLAINTEXT_GATES, decrypt_bit, decrypt_bits, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.netlist import adder_netlist
from repro.tfhe.params import TEST_TINY
from repro.tfhe.transform import DoubleFFTNegacyclicTransform

SESSION_COUNTS = (2, 4, 8, 16, 32)
GATE_SESSIONS = 16  # the acceptance-gate point
CIRCUIT_SESSIONS = (2, 8)
CIRCUIT_WIDTH = 8
GATE_MIX = ("nand", "and", "or", "xor", "xnor", "nor", "andyn", "orny")


@pytest.fixture(scope="module")
def backend():
    params = TEST_TINY
    transform = DoubleFFTNegacyclicTransform(params.N)
    secret, cloud = generate_keys(params, transform, unroll_factor=1, rng=33)
    context = cloud.default_context()
    _ = context.rotator  # warm the spectrum cache for both measured paths
    return params, secret, context


def _gate_jobs(secret, count, seed):
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(count):
        name = GATE_MIX[i % len(GATE_MIX)]
        bit_a, bit_b = int(rng.integers(0, 2)), int(rng.integers(0, 2))
        jobs.append(
            (
                name,
                bit_a,
                bit_b,
                encrypt_bit(secret, bit_a, rng=1000 + 2 * i),
                encrypt_bit(secret, bit_b, rng=1001 + 2 * i),
            )
        )
    return jobs


def test_scheduler_coalescing_speedup(backend, record_result):
    params, secret, context = backend
    lines = [
        "Cross-session batch scheduler, double-FFT engine, "
        f"{params.name} (n={params.n}, N={params.N})",
        "",
        "single-gate sessions (one job per session, one flush):",
        f"{'sessions':>8} {'seq s':>9} {'coal s':>9} {'seq bs/s':>9} "
        f"{'coal bs/s':>10} {'speedup':>8} {'calls':>6}",
    ]
    metrics = {
        "params": params.name,
        "engine": "double",
        "gate_sessions": {},
        "circuit_sessions": {},
    }

    measured = {}
    for count in SESSION_COUNTS:
        jobs = _gate_jobs(secret, count, seed=count)

        # -- sequential: each session evaluates its job on its own ----------
        evaluator = context.evaluator()
        start = time.perf_counter()
        seq_out = [evaluator.gate(name, ca, cb) for name, _, _, ca, cb in jobs]
        seq_seconds = time.perf_counter() - start

        # -- coalesced: same jobs through the scheduler, one flush ----------
        scheduler = BatchScheduler()
        scheduler.register_client("tenant", context)
        sessions = [scheduler.session("tenant") for _ in jobs]
        handles = [
            session.submit_gate(name, ca, cb)
            for session, (name, _, _, ca, cb) in zip(sessions, jobs)
        ]
        start = time.perf_counter()
        scheduler.flush()
        coal_seconds = time.perf_counter() - start

        for (name, bit_a, bit_b, _, _), handle, reference in zip(
            jobs, handles, seq_out
        ):
            out = handle.result()
            assert np.array_equal(out.a, reference.a)  # bit-identical rows
            assert decrypt_bit(secret, out) == PLAINTEXT_GATES[name](bit_a, bit_b)

        speedup = seq_seconds / coal_seconds
        measured[count] = speedup
        metrics["gate_sessions"][str(count)] = {
            "sequential_seconds": seq_seconds,
            "coalesced_seconds": coal_seconds,
            "sequential_bootstraps_per_s": count / seq_seconds,
            "coalesced_bootstraps_per_s": count / coal_seconds,
            "speedup": speedup,
            "batched_calls": scheduler.stats.batched_calls,
        }
        lines.append(
            f"{count:>8} {seq_seconds:>9.3f} {coal_seconds:>9.3f} "
            f"{count / seq_seconds:>9.1f} {count / coal_seconds:>10.1f} "
            f"{speedup:>7.1f}x {scheduler.stats.batched_calls:>6}"
        )

    # -- circuit jobs: levels advance in lockstep across sessions -----------
    circuit = adder_netlist(CIRCUIT_WIDTH)
    schedule = schedule_circuit(circuit)
    lines += [
        "",
        f"adder-circuit sessions ({CIRCUIT_WIDTH}-bit add, "
        f"{schedule.gate_count} gates in {schedule.depth} levels per job):",
        f"{'sessions':>8} {'seq s':>9} {'coal s':>9} {'speedup':>8} "
        f"{'calls':>6} {'rows/call':>10}",
    ]
    for count in CIRCUIT_SESSIONS:
        rng = np.random.default_rng(100 + count)
        mask = (1 << CIRCUIT_WIDTH) - 1
        cases = [
            (int(rng.integers(0, mask + 1)), int(rng.integers(0, mask + 1)))
            for _ in range(count)
        ]
        inputs = [
            (
                encrypt_integer(secret, a, CIRCUIT_WIDTH, rng=2000 + i),
                encrypt_integer(secret, b, CIRCUIT_WIDTH, rng=3000 + i),
            )
            for i, (a, b) in enumerate(cases)
        ]

        evaluator = context.evaluator()
        start = time.perf_counter()
        from repro.tfhe.executor import execute

        seq_results = [
            execute(circuit, evaluator, {"a": a_bits, "b": b_bits})["sum"]
            for a_bits, b_bits in inputs
        ]
        seq_seconds = time.perf_counter() - start

        scheduler = BatchScheduler()
        scheduler.register_client("tenant", context)
        handles = [
            scheduler.session("tenant").submit_circuit(
                circuit, {"a": a_bits, "b": b_bits}, schedule=schedule
            )
            for a_bits, b_bits in inputs
        ]
        start = time.perf_counter()
        scheduler.flush()
        coal_seconds = time.perf_counter() - start

        for (a_val, b_val), handle, reference in zip(cases, handles, seq_results):
            got_bits = handle.result()["sum"]
            assert bits_to_int(decrypt_bits(secret, got_bits)) == a_val + b_val
            for got, ref in zip(got_bits, reference):
                assert np.array_equal(got.a, ref.a)

        speedup = seq_seconds / coal_seconds
        stats = scheduler.stats
        metrics["circuit_sessions"][str(count)] = {
            "sequential_seconds": seq_seconds,
            "coalesced_seconds": coal_seconds,
            "speedup": speedup,
            "batched_calls": stats.batched_calls,
            "mean_rows_per_call": stats.mean_rows_per_call,
        }
        lines.append(
            f"{count:>8} {seq_seconds:>9.3f} {coal_seconds:>9.3f} "
            f"{speedup:>7.1f}x {stats.batched_calls:>6} "
            f"{stats.mean_rows_per_call:>10.1f}"
        )

    lines += [
        "",
        "seq = each session bootstraps its own jobs through the shared "
        "context's scalar evaluator; coal = same jobs submitted to the "
        "BatchScheduler and flushed once, same-key jobs sharing mixed-gate "
        "batched bootstrappings (circuit jobs advance level-by-level in "
        "lockstep).  Both paths share one spectrum-cached cloud key.",
    ]
    record_result("runtime_scheduler", "\n".join(lines))

    # Machine-readable trajectory: one schema entry per session count (the
    # coalesced path vs the per-session sequential baseline), full detail in
    # the free-form extra block.
    entries = [
        make_entry(
            f"gate_sessions_{count}",
            "double",
            params.name,
            count,
            payload["coalesced_bootstraps_per_s"],
            payload["sequential_bootstraps_per_s"],
        )
        for count, payload in (
            (int(key), value) for key, value in metrics["gate_sessions"].items()
        )
    ]
    json_path = write_bench_json("runtime", entries, extra=metrics)
    print(f"[written to {json_path}]")

    # Acceptance criterion: >= 2.5x bootstraps/sec for 16 coalesced single-gate
    # sessions vs the same jobs run sequentially per session (CI runners are
    # timing-noisy, so the bar is env-overridable like the PR1/PR2 gates).
    # The bar was 4x before the PR4 fused external product: that kernel made
    # the *sequential* baseline ~4x faster, so coalescing's relative headroom
    # shrank while both absolute throughputs rose.
    minimum = float(os.environ.get("RUNTIME_SPEEDUP_MIN", "2.5"))
    assert measured[GATE_SESSIONS] >= minimum, (
        f"coalescing {GATE_SESSIONS} single-gate sessions is only "
        f"{measured[GATE_SESSIONS]:.1f}x the sequential path "
        f"(required {minimum}x)"
    )

"""Serving stack: bootstraps/sec scaling across worker-pool sizes.

The PR-7 tentpole moves flush execution out of the calling process into a
:class:`repro.runtime.WorkerPool` — forked workers that attach the parent's
cloud-key spectrum cache through a read-only shared-memory segment and
bootstrap row chunks in parallel.  Rows are independent (the PR-1 batch
property), so sharding may only change *where* a bootstrap runs, never its
bits; this bench verifies exactly that before reporting a single number.

Measured: one fixed mixed gate/LUT workload (double-FFT engine, test-small
parameters — heavy enough per flush that compute, not IPC, dominates)
flushed through

* the **inline** single-process path (``execute_rows`` — the pre-PR-7
  baseline), and
* pools of **1, 2 and 4 workers** (the dispatch path ``tools/serve.py``
  puts behind the asyncio front).

Every pool is warmed with one untimed flush first so fork, segment attach
and first-touch costs stay out of the curve; timings are best-of-``BEST_OF``
wall clocks of the same rows.  Worker entries use the 1-worker pool as the
baseline, so the ``workers-4`` entry's ``speedup`` *is* the scaling curve's
headline number.

Acceptance gate: ``workers-4`` must reach the ``SERVING_SCALING_MIN`` floor
(default 1.7x over 1 worker) **when the machine exposes >= 4 usable CPUs**.
On smaller machines (CI containers here pin a single core) real scaling is
physically impossible — four workers timeslice one core — so the gate
degrades to ``SERVING_SCALING_MIN_SINGLE_CORE`` (default 0.35x): the pool
may not *collapse* under oversubscription (serialization storms, requeue
loops), but it cannot be asked to beat physics.  Both floors are
env-overridable; the CPU budget that picked the floor is recorded in the
JSON ``extra`` block so a reader can tell which gate applied.

Results land in ``results/serving.txt`` and schema-consistent
``results/BENCH_serving.json`` (see ``tools/bench.py``).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q -s
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.runtime import WorkerPool
from repro.runtime.scheduler import SchedulerStats, execute_rows
from repro.tfhe.gates import encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import TEST_SMALL
from repro.tfhe.transform import DoubleFFTNegacyclicTransform
from repro.utils.benchio import make_entry, write_bench_json

ROWS = 96
BEST_OF = 3
WORKER_COUNTS = (1, 2, 4)


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _workload(secret):
    """Mixed gate/LUT rows — the same shape the scheduler coalesces."""
    rows = []
    for i in range(ROWS):
        ca = encrypt_bit(secret, i & 1, rng=9000 + 2 * i)
        cb = encrypt_bit(secret, (i >> 1) & 1, rng=9001 + 2 * i)
        if i % 4 == 3:
            rows.append(("lut", 0b0110, (ca, cb)))  # XOR as a lookup row
        else:
            rows.append(("gate", "nand", ca, cb))
    return rows


def _same(xs, ys) -> bool:
    return all(
        np.array_equal(x.a, y.a) and int(x.b) == int(y.b) for x, y in zip(xs, ys)
    )


def run(record_result=None):
    """Verify bit-identity, then time the flush path per worker count."""
    params = TEST_SMALL
    engine = DoubleFFTNegacyclicTransform(params.N)
    secret, cloud = generate_keys(params, engine, unroll_factor=1, rng=77)
    context = cloud.default_context()
    _ = context.rotator  # warm the spectrum cache before any fork

    rows = _workload(secret)
    reference = execute_rows(context, rows, stats=SchedulerStats())

    # Inline baseline: the pre-pool single-process flush.
    inline_best = float("inf")
    for _ in range(BEST_OF):
        start = time.perf_counter()
        out = execute_rows(context, rows, stats=SchedulerStats())
        inline_best = min(inline_best, time.perf_counter() - start)
    assert _same(out, reference)

    seconds = {}
    for workers in WORKER_COUNTS:
        with WorkerPool(workers, task_timeout=120.0) as pool:
            # Untimed warm-up flush: fork, segment attach, first touch.
            warm = pool.run_rows("bench", context, rows, SchedulerStats())
            assert _same(warm, reference), f"{workers}-worker pool not bit-identical"
            best = float("inf")
            for _ in range(BEST_OF):
                start = time.perf_counter()
                out = pool.run_rows("bench", context, rows, SchedulerStats())
                best = min(best, time.perf_counter() - start)
            assert _same(out, reference)
            assert pool.stats.workers_restarted == 0
        seconds[workers] = best

    inline_bs = ROWS / inline_best
    pool_bs = {workers: ROWS / seconds[workers] for workers in WORKER_COUNTS}

    entries = [
        make_entry(
            label="inline",
            engine="double",
            params=params.name,
            batch_width=ROWS,
            bootstraps_per_sec=inline_bs,
            baseline_bootstraps_per_sec=inline_bs,
        )
    ]
    entries += [
        make_entry(
            label=f"workers-{workers}",
            engine="double",
            params=params.name,
            batch_width=ROWS,
            bootstraps_per_sec=pool_bs[workers],
            baseline_bootstraps_per_sec=pool_bs[1],
        )
        for workers in WORKER_COUNTS
    ]

    cpus = _usable_cpus()
    scaling = pool_bs[4] / pool_bs[1]
    multicore = cpus >= 4
    floor = (
        float(os.environ.get("SERVING_SCALING_MIN", "1.7"))
        if multicore
        else float(os.environ.get("SERVING_SCALING_MIN_SINGLE_CORE", "0.35"))
    )
    extra = {
        "rows_per_flush": ROWS,
        "best_of": BEST_OF,
        "usable_cpus": cpus,
        "cpu_count": os.cpu_count(),
        "scaling_4_over_1": scaling,
        "scaling_floor": floor,
        "scaling_floor_kind": "multicore" if multicore else "single_core",
        "seconds": {"inline": inline_best}
        | {f"workers-{w}": seconds[w] for w in WORKER_COUNTS},
    }

    lines = [
        f"Serving flush path, {ROWS} mixed gate/LUT rows, double-FFT engine, "
        f"{params.name} (n={params.n}, N={params.N}), {cpus} usable CPU(s)",
        "",
        f"{'path':>10} {'seconds':>8} {'bs/sec':>8} {'vs 1-worker':>12}",
        f"{'inline':>10} {inline_best:>8.3f} {inline_bs:>8.1f} {'-':>12}",
    ]
    lines += [
        f"{f'workers-{w}':>10} {seconds[w]:>8.3f} {pool_bs[w]:>8.1f} "
        f"{pool_bs[w] / pool_bs[1]:>11.2f}x"
        for w in WORKER_COUNTS
    ]
    lines += [
        "",
        f"4-worker scaling {scaling:.2f}x over 1 worker "
        f"(floor {floor}x, {extra['scaling_floor_kind']} gate)",
        "",
        "every pool output checked bit-identical to the inline flush before "
        f"timing; warm-up flush untimed; best-of-{BEST_OF} timings.",
    ]
    if record_result is not None:
        record_result("serving", "\n".join(lines))
    else:
        print("\n".join(lines))

    path = write_bench_json("serving", entries, extra=extra)
    print(f"[written to {path}]")
    return entries, extra


def test_serving_worker_scaling(record_result):
    entries, extra = run(record_result)
    floor = extra["scaling_floor"]
    assert extra["scaling_4_over_1"] >= floor, (
        f"4-worker pool reached only {extra['scaling_4_over_1']:.2f}x the "
        f"1-worker throughput (required {floor}x on "
        f"{extra['usable_cpus']} usable CPUs)"
    )
    # The 1-worker pool must stay within IPC overhead of the inline path.
    by_label = {entry["label"]: entry for entry in entries}
    assert by_label["workers-1"]["bootstraps_per_sec"] > 0
    assert by_label["workers-4"]["speedup"] == extra["scaling_4_over_1"]

"""Compiler pipeline: gate reduction and bootstraps/sec on a traced program.

The PR-5 tentpole traces ordinary Python arithmetic into a netlist and
shrinks it with the :class:`repro.compiler.PassManager` pipeline (constant
folding, NOT/COPY absorption, CSE, depth rebalancing, DCE).  Every removed
gate is a removed bootstrapping — the dominant cost of TFHE gate evaluation
per the paper's Figure-1 breakdown — so the win is measured twice:

* **structurally** — live bootstrapped gates and executor levels of the
  traced 16-bit expression ``max(a*3 + b, b - c)`` before vs after the
  pipeline (the naive trace ANDs against all sixteen constant multiplier
  bits and ripples full-width carry chains; the optimizer folds, absorbs
  and dedups them away);
* **end-to-end** — wall-clock of one full encrypted evaluation through
  :class:`repro.tfhe.executor.CircuitExecutor` (double-FFT engine,
  test-tiny parameters, shared spectrum cache).  Throughput is reported as
  *effective* bootstraps/sec: traced-circuit gates divided by wall time,
  i.e. useful work per second for the same program, which makes the
  optimized run's advantage exactly its wall-clock win.

Both circuits are verified against plaintext co-simulation (every pass is
checked semantics-preserving, and the encrypted outputs are decrypted and
compared) before any number is reported.

Acceptance gate: >= 20% live-gate reduction (override with
``COMPILER_GATE_REDUCTION_MIN``) and an optimized wall-clock win >= the
``COMPILER_SPEEDUP_MIN`` floor (default 1.2x; CI shared runners are
timing-noisy).  Results land in ``results/compiler.txt`` and
schema-consistent ``results/BENCH_compiler.json`` (see ``tools/bench.py``).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_compiler.py -q -s
"""

from __future__ import annotations

import os
import time

from repro.compiler import FheUint, PassManager, fhe_max, simulate, trace
from repro.compiler.passes import circuit_depth, live_gate_count
from repro.tfhe.circuits import decrypt_integer, encrypt_integer
from repro.tfhe.executor import CircuitExecutor, schedule_circuit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import TEST_TINY
from repro.tfhe.transform import DoubleFFTNegacyclicTransform
from repro.utils.benchio import make_entry, write_bench_json

WIDTH = 16
BEST_OF = 2
INPUTS = {"a": 51213, "b": 7_312, "c": 61_000}


def traced_benchmark_circuit():
    """The acceptance-criteria expression, traced at 16 bit."""
    return trace(
        lambda a, b, c: fhe_max(a * 3 + b, b - c),
        FheUint(WIDTH, "a"),
        FheUint(WIDTH, "b"),
        FheUint(WIDTH, "c"),
    )


def run(record_result=None):
    """Trace, optimize, verify and time the benchmark program."""
    circuit = traced_benchmark_circuit()
    manager = PassManager(verify=True, trials=12, rng=5)
    optimized = manager.run(circuit)

    gates_before = live_gate_count(circuit)
    gates_after = live_gate_count(optimized)
    reduction = 1.0 - gates_after / gates_before
    depth_before = circuit_depth(circuit)
    depth_after = circuit_depth(optimized)

    params = TEST_TINY
    engine = DoubleFFTNegacyclicTransform(params.N)
    secret, cloud = generate_keys(params, engine, unroll_factor=1, rng=55)
    context = cloud.default_context()
    _ = context.rotator  # warm the spectrum cache for both measured paths

    encrypted = {
        name: encrypt_integer(secret, value, WIDTH, rng=100 + i)
        for i, (name, value) in enumerate(INPUTS.items())
    }
    expected = simulate(circuit, INPUTS)["out"]
    modulus = 2**WIDTH
    assert expected == max(
        (INPUTS["a"] * 3 + INPUTS["b"]) % modulus, (INPUTS["b"] - INPUTS["c"]) % modulus
    )

    schedules = {
        "traced": (circuit, schedule_circuit(circuit)),
        "optimized": (optimized, schedule_circuit(optimized)),
    }
    seconds = {}
    for label, (net, schedule) in schedules.items():
        executor = CircuitExecutor.for_context(context, batch_size=1)
        best = float("inf")
        for _ in range(BEST_OF):
            start = time.perf_counter()
            out = executor.run_samples(net, encrypted, schedule=schedule)
            best = min(best, time.perf_counter() - start)
        # Correctness before throughput: decrypt and compare to plaintext sim.
        got = decrypt_integer(secret, out["out"])
        assert got == expected, f"{label} circuit decrypted to {got}, want {expected}"
        seconds[label] = best

    # Effective throughput: useful (traced-program) gates per second, so the
    # optimized entry's speedup is exactly its end-to-end wall-clock win.
    traced_bs = gates_before / seconds["traced"]
    optimized_bs = gates_before / seconds["optimized"]

    entries = [
        make_entry(
            label="optimized_vs_traced",
            engine="double",
            params=params.name,
            batch_width=1,
            bootstraps_per_sec=optimized_bs,
            baseline_bootstraps_per_sec=traced_bs,
        ),
    ]
    extra = {
        "expression": "max(a*3 + b, b - c)",
        "width": WIDTH,
        "gates_traced": gates_before,
        "gates_optimized": gates_after,
        "gate_reduction": reduction,
        "depth_traced": depth_before,
        "depth_optimized": depth_after,
        "levels_traced": schedules["traced"][1].depth,
        "levels_optimized": schedules["optimized"][1].depth,
        "passes": [
            {
                "name": s.name,
                "gates_before": s.gates_before,
                "gates_after": s.gates_after,
                "depth_before": s.depth_before,
                "depth_after": s.depth_after,
            }
            for s in manager.stats
        ],
    }

    lines = [
        "Compiler pipeline on traced 16-bit max(a*3 + b, b - c), "
        f"double-FFT engine, {params.name} (n={params.n}, N={params.N})",
        "",
        f"{'circuit':>10} {'gates':>6} {'depth':>6} {'levels':>7} "
        f"{'seconds':>8} {'eff bs/s':>9}",
        f"{'traced':>10} {gates_before:>6} {depth_before:>6} "
        f"{schedules['traced'][1].depth:>7} {seconds['traced']:>8.3f} {traced_bs:>9.1f}",
        f"{'optimized':>10} {gates_after:>6} {depth_after:>6} "
        f"{schedules['optimized'][1].depth:>7} {seconds['optimized']:>8.3f} "
        f"{optimized_bs:>9.1f}",
        "",
        f"gate reduction {100 * reduction:.1f}%  "
        f"wall-clock win {seconds['traced'] / seconds['optimized']:.2f}x",
        "",
        "per-pass trajectory (live gates / bootstrap depth):",
        manager.summary(),
        "",
        "every pass co-simulated semantics-preserving; encrypted outputs of "
        "both circuits decrypted and checked against plaintext simulation "
        f"before timing; best-of-{BEST_OF} timings.",
    ]
    if record_result is not None:
        record_result("compiler", "\n".join(lines))
    else:
        print("\n".join(lines))

    path = write_bench_json("compiler", entries, extra=extra)
    print(f"[written to {path}]")
    return entries, extra


def test_compiler_gate_reduction_and_speedup(record_result):
    entries, extra = run(record_result)
    reduction_floor = float(os.environ.get("COMPILER_GATE_REDUCTION_MIN", "0.20"))
    speedup_floor = float(os.environ.get("COMPILER_SPEEDUP_MIN", "1.2"))
    assert extra["gate_reduction"] >= reduction_floor, (
        f"optimizer removed only {100 * extra['gate_reduction']:.1f}% of live "
        f"gates (required {100 * reduction_floor:.1f}%)"
    )
    entry = entries[0]
    assert entry["speedup"] >= speedup_floor, (
        f"optimized circuit is only {entry['speedup']:.2f}x the traced "
        f"wall-clock (required {speedup_floor}x)"
    )
    assert extra["depth_optimized"] <= extra["depth_traced"]
    assert extra["levels_optimized"] <= extra["levels_traced"]

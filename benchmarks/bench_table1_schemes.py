"""Table 1: comparison between HE schemes (BGV, BFV, CKKS, FHEW, TFHE)."""

from repro.analysis.schemes import bootstrapping_speedup_over, render_table1, table1_rows


def test_table1_scheme_comparison(benchmark, record_result):
    rows = benchmark(table1_rows)
    assert len(rows) == 5
    text = render_table1()
    text += (
        f"\nTFHE bootstrapping speedup over BGV: {bootstrapping_speedup_over('BGV'):.0f}x"
        f"\nTFHE bootstrapping speedup over CKKS: {bootstrapping_speedup_over('CKKS'):.0f}x"
    )
    record_result("table1_schemes", text)

"""Engine backends: measured throughput of every usable transform engine.

The PR-8 tentpole makes the transform registry pluggable for performance:
``"compiled"`` JITs the double-FFT engine's glue loops (falling back to a
cache-blocked NumPy path when Numba is absent) and ``"cupy"`` moves the
whole bootstrap inner loop onto a CUDA device.  Both claim the ``fft64``
error-model family, so their outputs are checked against the ``"double"``
reference *before* any timing — bit-identical for the CPU engines, equal
after decryption for the device engine (cuFFT may round the last bit
differently).

Measured: one fixed mixed gate/LUT workload (test-small parameters) pushed
through ``execute_rows`` under every usable ``fft64``-family engine, with
``"double"`` as the baseline entry.  Each engine gets one untimed warm-up
pass (JIT compilation, device upload) and best-of-``BEST_OF`` wall clocks.
Registered-but-unavailable engines are skipped and their reasons recorded.

Acceptance gate: the compiled engine must reach
``COMPILED_ENGINE_SPEEDUP_MIN`` (default 2.0x over double) **when its Numba
tier actually compiled**.  Without Numba the fallback is plain NumPy with
better cache behaviour — no JIT to gate — so the floor degrades to
``COMPILED_ENGINE_FALLBACK_MIN`` (default 0.7x): the fallback may not
*collapse*, but it is not asked to beat the engine it wraps.  Which gate
applied is recorded in the JSON ``extra`` block.

The ``extra`` block also carries the :mod:`repro.analysis.backend_comparison`
table lining the measured speedups up against the modeled CPU/GPU/MATCHA
platform throughputs (``src/repro/platforms/``) at the paper's parameters.

Results land in ``results/engines.txt`` and schema-consistent
``results/BENCH_engines.json`` (see ``tools/bench.py``).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_engines.py -q -s
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.backend_comparison import (
    backend_comparison,
    render_backend_comparison,
)
from repro.runtime.context import FheContext
from repro.runtime.scheduler import SchedulerStats, execute_rows
from repro.tfhe.gates import decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import TEST_SMALL
from repro.tfhe.transform import (
    DoubleFFTNegacyclicTransform,
    available_engines,
    engine_entry,
)
from repro.utils.benchio import make_entry, write_bench_json

ROWS = 64
BEST_OF = 3
BASELINE = "double"
#: fft64-family engines this bench times, in reporting order.
CANDIDATES = ("double", "compiled", "cupy")


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _workload(secret):
    """Mixed gate/LUT rows — the same shape the scheduler coalesces."""
    rows = []
    for i in range(ROWS):
        ca = encrypt_bit(secret, i & 1, rng=7000 + 2 * i)
        cb = encrypt_bit(secret, (i >> 1) & 1, rng=7001 + 2 * i)
        if i % 4 == 3:
            rows.append(("lut", 0b0110, (ca, cb)))  # XOR as a lookup row
        else:
            rows.append(("gate", "nand", ca, cb))
    return rows


def _bit_identical(xs, ys) -> bool:
    return all(
        np.array_equal(x.a, y.a) and int(x.b) == int(y.b) for x, y in zip(xs, ys)
    )


def _decrypt_equal(secret, xs, ys) -> bool:
    return all(decrypt_bit(secret, x) == decrypt_bit(secret, y) for x, y in zip(xs, ys))


def run(record_result=None):
    """Check each engine against the double reference, then time it."""
    params = TEST_SMALL
    secret, cloud = generate_keys(
        params, DoubleFFTNegacyclicTransform(params.N), unroll_factor=1, rng=55
    )
    rows = _workload(secret)

    engines = available_engines()
    skipped = {
        kind: engines[kind] for kind in CANDIDATES if engines[kind] is not None
    }
    usable = [kind for kind in CANDIDATES if engines[kind] is None]

    reference = None
    seconds = {}
    jit_enabled = False
    for kind in usable:
        context = FheContext(cloud, engine=kind)
        if kind == "compiled":
            jit_enabled = bool(getattr(context.engine, "jit_enabled", False))
        # Untimed warm-up: spectrum cache, JIT compilation, device staging.
        out = execute_rows(context, rows, stats=SchedulerStats())
        if kind == BASELINE:
            reference = out
        elif engine_entry(kind).error_model == "fft64":
            assert _bit_identical(out, reference), f"{kind} is not bit-identical"
        else:  # fft64-device: same arithmetic, last-bit FFT rounding may differ
            assert _decrypt_equal(secret, out, reference), f"{kind} decrypts wrong"
        best = float("inf")
        for _ in range(BEST_OF):
            start = time.perf_counter()
            out = execute_rows(context, rows, stats=SchedulerStats())
            best = min(best, time.perf_counter() - start)
        seconds[kind] = best

    bs = {kind: ROWS / seconds[kind] for kind in usable}
    entries = [
        make_entry(
            label=kind,
            engine=kind,
            params=params.name,
            batch_width=ROWS,
            bootstraps_per_sec=bs[kind],
            baseline_bootstraps_per_sec=bs[BASELINE],
        )
        for kind in usable
    ]

    compiled_speedup = bs["compiled"] / bs[BASELINE]
    floor = (
        float(os.environ.get("COMPILED_ENGINE_SPEEDUP_MIN", "2.0"))
        if jit_enabled
        else float(os.environ.get("COMPILED_ENGINE_FALLBACK_MIN", "0.7"))
    )
    comparison = backend_comparison(measured=bs, baseline_engine=BASELINE)
    extra = {
        "rows_per_flush": ROWS,
        "best_of": BEST_OF,
        "usable_cpus": _usable_cpus(),
        "compiled_jit_enabled": jit_enabled,
        "compiled_speedup": compiled_speedup,
        "compiled_floor": floor,
        "compiled_floor_kind": "jit" if jit_enabled else "numpy_fallback",
        "skipped_engines": skipped,
        "seconds": seconds,
        "backend_comparison": [row.to_json() for row in comparison],
    }

    lines = [
        f"Engine backends, {ROWS} mixed gate/LUT rows, {params.name} "
        f"(n={params.n}, N={params.N}), {extra['usable_cpus']} usable CPU(s)",
        "",
        f"{'engine':>10} {'seconds':>8} {'bs/sec':>8} {'vs double':>10}",
    ]
    lines += [
        f"{kind:>10} {seconds[kind]:>8.3f} {bs[kind]:>8.1f} "
        f"{bs[kind] / bs[BASELINE]:>9.2f}x"
        for kind in usable
    ]
    lines += [f"{kind:>10} {'skipped:':>9} {reason}" for kind, reason in skipped.items()]
    lines += [
        "",
        f"compiled engine {compiled_speedup:.2f}x over double "
        f"(floor {floor}x, {extra['compiled_floor_kind']} gate; "
        f"numba {'active' if jit_enabled else 'absent'})",
        "",
        render_backend_comparison(comparison),
        "",
        "every engine's output checked against the double reference before "
        f"timing (bit-identical for fft64, decrypted-equal for device); "
        f"warm-up pass untimed; best-of-{BEST_OF} timings.",
    ]
    if record_result is not None:
        record_result("engines", "\n".join(lines))
    else:
        print("\n".join(lines))

    path = write_bench_json("engines", entries, extra=extra)
    print(f"[written to {path}]")
    return entries, extra


def test_engine_backend_throughput(record_result):
    entries, extra = run(record_result)
    floor = extra["compiled_floor"]
    assert extra["compiled_speedup"] >= floor, (
        f"compiled engine reached only {extra['compiled_speedup']:.2f}x the "
        f"double engine (required {floor}x, {extra['compiled_floor_kind']} gate)"
    )
    by_label = {entry["label"]: entry for entry in entries}
    assert by_label["double"]["speedup"] == 1.0
    assert by_label["compiled"]["speedup"] == extra["compiled_speedup"]

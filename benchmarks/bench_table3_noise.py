"""Table 3: noise comparison between BKU (m = 2) and MATCHA (general m)."""

from repro.analysis.noise_tables import render_table3, table3_rows
from repro.tfhe.noise import TfheNoiseModel
from repro.tfhe.params import PAPER_110BIT


def test_table3_noise_comparison(benchmark, record_result):
    rows = benchmark(table3_rows, PAPER_110BIT, (2, 3, 4, 5))
    assert [r[0] for r in rows] == [2, 3, 4, 5]

    # The paper's qualitative claims: EP/rounding noise scales as 1/m, the
    # bootstrapping-key count (and with it the total noise) grows with m.
    sigmas = [float(r[-1]) for r in rows]
    assert sigmas == sorted(sigmas)
    record_result("table3_noise", render_table3(PAPER_110BIT, (2, 3, 4, 5)))


def test_table3_noise_model_evaluation_speed(benchmark):
    """Raw speed of one full noise-budget evaluation (model-only microbench)."""
    model = TfheNoiseModel(PAPER_110BIT, unroll_factor=3, fft_error_stddev=1e-7)
    budget = benchmark(model.gate_budget)
    assert budget.total_variance > 0

"""Programmable bootstrapping: radix digit-LUT arithmetic vs boolean gates.

The PR-6 tentpole replaces the boolean-only bootstrap contract with
programmable test vectors: a 16-bit multiply evaluated as radix-2^2 digits
(:class:`repro.tfhe.integers.RadixEvaluator` — one batched partial-product
lookup, carry propagation as lookups, linear digit ops free) against the
best boolean lowering this repo has (traced ``a * b``, optimized with the
LUT pipeline, executed level-parallel by
:class:`repro.tfhe.executor.CircuitExecutor`).

Both paths run under the same cloud key, engine and parameter set, and both
results are decrypted and checked against the plaintext product before any
number is reported.  The win is measured twice:

* **structurally** — bootstraps per multiply (the paper's unit of cost):
  the boolean circuit pays one blind rotation per live gate, the radix
  evaluator one per digit-LUT row;
* **end-to-end** — wall-clock per multiply, reported as effective
  bootstraps/sec (boolean-path bootstraps divided by wall time, so the
  radix entry's speedup is exactly its wall-clock win).

Acceptance gate: >= 5x fewer bootstraps on the 16-bit multiply (override
with ``PBS_BOOTSTRAP_REDUCTION_MIN``) and a wall-clock win >= the
``PBS_SPEEDUP_MIN`` floor (default 1.2x; CI shared runners are
timing-noisy).  Results land in ``results/pbs.txt`` and schema-consistent
``results/BENCH_pbs.json`` (see ``tools/bench.py``).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_programmable_bootstrap.py -q -s
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.compiler import FheUint, PassManager, trace
from repro.compiler.passes import LUT_PIPELINE, live_gate_count
from repro.runtime.context import FheContext
from repro.tfhe.circuits import decrypt_integer, encrypt_integer
from repro.tfhe.executor import CircuitExecutor, schedule_circuit
from repro.tfhe.integers import RadixEvaluator, decrypt_radix, encrypt_radix
from repro.tfhe.params import TEST_PBS, DigitEncoding
from repro.tfhe.transform import DoubleFFTNegacyclicTransform
from repro.utils.benchio import make_entry, write_bench_json

WIDTHS = (8, 16)
ENCODING = DigitEncoding(message_bits=2, carry_bits=2)
BEST_OF = 2
#: The 16-bit operand pair timed for the headline numbers.
OPERANDS = {8: (201, 173), 16: (51_213, 47_900)}


def run(record_result=None):
    """Multiply under both lowerings; verify, count bootstraps, time."""
    params = TEST_PBS
    engine = DoubleFFTNegacyclicTransform(params.N)
    rng = np.random.default_rng(99)
    secret, context = FheContext.generate(params, transform=engine, rng=rng)
    _ = context.rotator  # warm the spectrum cache for both measured paths

    entries = []
    extra = {"encoding": f"{ENCODING.message_bits}+{ENCODING.carry_bits}-bit digits"}
    lines = [
        "Programmable bootstrapping: radix digit-LUT multiply vs optimized "
        f"boolean circuit, double-FFT engine, {params.name} "
        f"(n={params.n}, N={params.N}), {ENCODING.message_bits}+"
        f"{ENCODING.carry_bits}-bit digits",
        "",
        f"{'width':>6} {'path':>8} {'bootstraps':>11} {'seconds':>8} "
        f"{'eff bs/s':>10}",
    ]

    for width in WIDTHS:
        a_val, b_val = OPERANDS[width]
        expected = (a_val * b_val) % (1 << width)

        # -- boolean baseline: traced a*b through the LUT pipeline ----------
        circuit = trace(
            lambda a, b: a * b, FheUint(width, "a"), FheUint(width, "b")
        )
        optimized = PassManager(passes=LUT_PIPELINE, verify=True, trials=8).run(
            circuit
        )
        schedule = schedule_circuit(optimized)
        enc_a = encrypt_integer(secret, a_val, width, rng=rng)
        enc_b = encrypt_integer(secret, b_val, width, rng=rng)
        executor = CircuitExecutor.for_context(context, batch_size=1)
        bool_seconds = float("inf")
        for _ in range(BEST_OF):
            before = executor.evaluator.counters.bootstraps
            start = time.perf_counter()
            out = executor.run_samples(
                optimized, {"a": enc_a, "b": enc_b}, schedule=schedule
            )
            bool_seconds = min(bool_seconds, time.perf_counter() - start)
            bool_bootstraps = executor.evaluator.counters.bootstraps - before
        got = decrypt_integer(secret, out["out"])
        assert got == expected, f"boolean mul{width} decrypted to {got}, want {expected}"

        # -- radix digit-LUT path -------------------------------------------
        evaluator = RadixEvaluator(context, ENCODING)
        digits = width // ENCODING.message_bits
        x = encrypt_radix(secret.lwe_key, a_val, digits, ENCODING, rng=rng)
        y = encrypt_radix(secret.lwe_key, b_val, digits, ENCODING, rng=rng)
        radix_seconds = float("inf")
        for _ in range(BEST_OF):
            before = evaluator.counters.bootstraps
            start = time.perf_counter()
            product = evaluator.mul(x, y)
            radix_seconds = min(radix_seconds, time.perf_counter() - start)
            radix_bootstraps = evaluator.counters.bootstraps - before
        got = decrypt_radix(secret.lwe_key, product)
        assert got == expected, f"radix mul{width} decrypted to {got}, want {expected}"

        # Effective throughput: boolean-path bootstraps (the useful work of
        # one multiply, priced in the baseline's own unit) per second.
        bool_bs = bool_bootstraps / bool_seconds
        radix_bs = bool_bootstraps / radix_seconds
        reduction = bool_bootstraps / radix_bootstraps
        entries.append(
            make_entry(
                label=f"radix_vs_boolean_mul{width}",
                engine="double",
                params=params.name,
                batch_width=1,
                bootstraps_per_sec=radix_bs,
                baseline_bootstraps_per_sec=bool_bs,
            )
        )
        extra[f"mul{width}"] = {
            "boolean_gates_optimized": live_gate_count(optimized),
            "boolean_bootstraps": bool_bootstraps,
            "radix_bootstraps": radix_bootstraps,
            "bootstrap_reduction": reduction,
            "boolean_seconds": bool_seconds,
            "radix_seconds": radix_seconds,
        }
        lines.append(
            f"{width:>6} {'boolean':>8} {bool_bootstraps:>11} "
            f"{bool_seconds:>8.3f} {bool_bs:>10.1f}"
        )
        lines.append(
            f"{width:>6} {'radix':>8} {radix_bootstraps:>11} "
            f"{radix_seconds:>8.3f} {radix_bs:>10.1f}"
        )
        lines.append(
            f"{'':>6} {'':>8} -> {reduction:.1f}x fewer bootstraps, "
            f"{bool_seconds / radix_seconds:.2f}x wall-clock"
        )

    lines += [
        "",
        "boolean = traced a*b, LUT-pipeline optimized, level-parallel "
        "executor; radix = digit-LUT multiply (one batched partial-product "
        "lookup + carry sweeps); both decrypted and checked against the "
        f"plaintext product before timing; best-of-{BEST_OF} timings.",
    ]
    if record_result is not None:
        record_result("pbs", "\n".join(lines))
    else:
        print("\n".join(lines))

    path = write_bench_json("pbs", entries, extra=extra)
    print(f"[written to {path}]")
    return entries, extra


def test_programmable_bootstrap_reduction_and_speedup(record_result):
    entries, extra = run(record_result)
    reduction_floor = float(os.environ.get("PBS_BOOTSTRAP_REDUCTION_MIN", "5.0"))
    speedup_floor = float(os.environ.get("PBS_SPEEDUP_MIN", "1.2"))
    detail = extra["mul16"]
    assert detail["bootstrap_reduction"] >= reduction_floor, (
        f"radix 16-bit multiply needs {detail['radix_bootstraps']} bootstraps "
        f"vs {detail['boolean_bootstraps']} boolean — only "
        f"{detail['bootstrap_reduction']:.1f}x (required {reduction_floor}x)"
    )
    entry = next(e for e in entries if e["label"] == "radix_vs_boolean_mul16")
    assert entry["speedup"] >= speedup_floor, (
        f"radix 16-bit multiply is only {entry['speedup']:.2f}x the boolean "
        f"wall-clock (required {speedup_floor}x)"
    )

"""Figure 2: breadth-first vs depth-first (conjugate-pair) FFT traversal."""

import numpy as np

from repro.analysis.fft_sweep import depth_first_comparison, render_figure2
from repro.core.conjugate_pair import ConjugatePairFFT


def test_fig2_depth_first_structure(benchmark, record_result):
    comparison = benchmark.pedantic(
        lambda: depth_first_comparison(transform_size=512), rounds=1, iterations=1
    )
    assert comparison.depth_first
    assert comparison.twiddle_read_reduction >= 2.0
    record_result("fig2_depth_first", render_figure2(comparison))


def test_fig2_conjugate_pair_transform_speed(benchmark):
    """Timing of the structural CPFFT model itself (not a paper number)."""
    rng = np.random.default_rng(0)
    signal = rng.normal(size=256) + 1j * rng.normal(size=256)
    fft = ConjugatePairFFT(256, twiddle_bits=None)
    result = benchmark(fft.transform, signal)
    assert result.shape == (256,)

"""Figure 8: error of the approximate multiplication-less integer FFT/IFFT.

Sweeps the DVQTF bit-width on the exact workload the external product runs
(gadget-decomposed polynomial x torus polynomial, N = 1024) and reports the
error in dB next to the double-precision baseline.  Paper reference points:
error decreasing with the twiddle bit-width, saturating around -141 dB for
64-bit DVQTFs while the double-precision kernels sit near -150 dB.
"""

from repro.analysis.fft_sweep import fft_error_sweep, render_figure8
from repro.core.fft_error import error_floor_db


def test_fig8_error_vs_twiddle_bits(benchmark, record_result):
    samples = benchmark.pedantic(
        lambda: fft_error_sweep(
            degree=1024,
            twiddle_bits=(10, 16, 20, 24, 28, 32, 38, 44, 52, 58, 64, 68),
            trials=2,
            rng=0,
        ),
        rounds=1,
        iterations=1,
    )
    approx = [s for s in samples if s.twiddle_bits is not None]
    double = samples[-1]

    # Shape assertions mirroring the paper's figure.
    assert approx[0].error_db > approx[5].error_db > error_floor_db(samples) - 1.0
    assert error_floor_db(samples) > double.error_db
    assert error_floor_db(samples) < -100.0

    record_result("fig8_fft_error", render_figure8(samples))

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, each bench writes its rendered table to
``results/<name>.txt`` (and prints it), so the paper-style output survives the
run and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a rendered table to results/<name>.txt and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record

"""Level-parallel circuit execution: gates/level profile and wall-clock.

PR 1's batched bootstrapping engine only paid off when the *caller* supplied
a batch; multi-gate circuits evaluated gate by gate fed it rows one at a
time.  This bench measures what the level scheduler recovers: for 8/16/32-bit
encrypted adds it reports the gates-per-level histogram, then the wall-clock
of the levelized executor at batch widths 1–64 words against the eager
scalar gate-by-gate path (the historical behaviour — one bootstrapping per
gate per word).

Alongside the measurements the table prints the accelerator-model prediction
(:func:`repro.core.pipeline.circuit_levelized_speedup` with MATCHA stage
times): on hardware the recovered cost is the per-gate pipeline fill, in the
functional simulator it is the per-call NumPy dispatch overhead — the same
amortisation argument at two different scales.

Acceptance gate: a 32-bit encrypted add at batch width 16 must run >= 4x
faster per word through the levelized executor than eagerly (override the
bar with CIRCUIT_SPEEDUP_MIN, as CI shared runners are timing-noisy).

Results land in ``results/circuit_levels.txt`` and schema-consistent
``results/BENCH_circuit_levels.json`` (see ``tools/bench.py``).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_circuit_levels.py -q -s
"""

from __future__ import annotations

import functools
import os
import time

import numpy as np

from repro.arch.ops import OpType
from repro.core.pipeline import PipelineStageTimes, circuit_levelized_speedup
from repro.platforms.matcha import MatchaPlatform
from repro.tfhe.circuits import add, decrypt_integers, encrypt_integer, encrypt_integers
from repro.tfhe.executor import CircuitExecutor, schedule_circuit
from repro.tfhe.gates import BatchGateEvaluator, TFHEGateEvaluator
from repro.tfhe.keys import generate_keys
from repro.tfhe.netlist import adder_netlist
from repro.tfhe.params import PAPER_110BIT, TEST_TINY
from repro.tfhe.transform import DoubleFFTNegacyclicTransform
from repro.utils.benchio import make_entry, write_bench_json

WIDTHS = (8, 16, 32)
BATCH_WIDTHS = (1, 4, 16, 64)
GATE_WIDTH, GATE_BATCH = 32, 16


@functools.lru_cache(maxsize=1)
def _backend():
    params = TEST_TINY
    transform = DoubleFFTNegacyclicTransform(params.N)
    secret, cloud = generate_keys(params, transform, unroll_factor=1, rng=21)
    return params, secret, cloud


def _matcha_stage_times(m: int = 2):
    """MATCHA per-iteration stage times (same derivation as the Fig. 6 bench)."""
    platform = MatchaPlatform(PAPER_110BIT)
    schedule = platform.schedule(m)
    iterations = -(-PAPER_110BIT.n // m)
    tgsw = (
        schedule.cycles_by_op.get(OpType.TGSW_SCALE, 0.0)
        + schedule.cycles_by_op.get(OpType.TGSW_ADD, 0.0)
    ) / iterations
    ep = (
        schedule.cycles_by_op.get(OpType.IFFT, 0.0)
        + schedule.cycles_by_op.get(OpType.FFT, 0.0)
        + schedule.cycles_by_op.get(OpType.POINTWISE_MAC, 0.0)
        + schedule.cycles_by_op.get(OpType.DECOMPOSE, 0.0)
    ) / iterations
    return PipelineStageTimes(tgsw_cluster_cycles=tgsw, ep_core_cycles=ep), iterations


def run(record_result=None):
    """Profile and time the levelized executor; write the schema JSON."""
    params, secret, cloud = _backend()
    rng = np.random.default_rng(22)
    stage_times, iterations = _matcha_stage_times()

    lines = [
        "Level-parallel circuit execution, double-FFT engine, "
        f"{params.name} (n={params.n}, N={params.N})",
        "",
    ]

    # -- gates/level profile per adder width --------------------------------
    schedules = {}
    for width in WIDTHS:
        schedule = schedule_circuit(adder_netlist(width))
        schedules[width] = schedule
        histogram = ", ".join(
            f"{levels}x w{w}" for w, levels in schedule.width_histogram().items()
        )
        lines.append(
            f"add{width}: {schedule.gate_count} gates in {schedule.depth} levels "
            f"(mean width {schedule.mean_width:.2f}, max {schedule.max_width}) "
            f"| levels: {histogram}"
        )
    lines.append("")

    # -- eager gate-by-gate baseline (one word, scalar evaluator) -----------
    eager_per_word = {}
    for width in WIDTHS:
        mask = (1 << width) - 1
        a = encrypt_integer(secret, int(rng.integers(0, mask + 1)), width, rng=rng)
        b = encrypt_integer(secret, int(rng.integers(0, mask + 1)), width, rng=rng)
        evaluator = TFHEGateEvaluator(cloud)
        start = time.perf_counter()
        add(evaluator, a, b)
        eager_per_word[width] = time.perf_counter() - start

    # -- levelized executor at growing word batches -------------------------
    lines.append(
        f"{'width':>6} {'batch':>6} {'eager s/word':>13} {'level s/word':>13} "
        f"{'speedup':>8} {'model (MATCHA)':>15}"
    )
    measured = {}
    seconds_per_word = {}
    for width in WIDTHS:
        mask = (1 << width) - 1
        circuit = adder_netlist(width)
        schedule = schedules[width]
        for batch in BATCH_WIDTHS:
            a_vals = [int(v) for v in rng.integers(0, mask + 1, batch)]
            b_vals = [int(v) for v in rng.integers(0, mask + 1, batch)]
            inputs = {
                "a": encrypt_integers(secret, a_vals, width, rng=rng),
                "b": encrypt_integers(secret, b_vals, width, rng=rng),
            }
            executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=batch))
            start = time.perf_counter()
            sums = executor.run(circuit, inputs, schedule=schedule)["sum"]
            per_word = (time.perf_counter() - start) / batch
            assert decrypt_integers(secret, sums) == [
                x + y for x, y in zip(a_vals, b_vals)
            ]
            speedup = eager_per_word[width] / per_word
            measured[(width, batch)] = speedup
            seconds_per_word[(width, batch)] = per_word
            model = circuit_levelized_speedup(
                schedule.level_widths,
                stage_times,
                iterations,
                batch_width=batch,
                pipeline_count=8,  # the paper's slice count
            )
            lines.append(
                f"{width:>6} {batch:>6} {eager_per_word[width]:>13.3f} "
                f"{per_word:>13.3f} {speedup:>7.1f}x {model:>14.2f}x"
            )
    lines.append("")
    lines.append(
        "eager = scalar gate-by-gate (one bootstrapping per gate per word); "
        "level = one mixed-gate batched bootstrapping per dependency level "
        "over all words; model = predicted on-accelerator gain for 8-slice "
        "MATCHA (m=2): each level's independent bootstrappings spread over "
        "the slices the eager dependency chain leaves idle."
    )
    if record_result is not None:
        record_result("circuit_levels", "\n".join(lines))
    else:
        print("\n".join(lines))

    # Effective throughput per measurement point: circuit gates per second
    # per word, levelized vs eager — the speedup is the measured wall win.
    entries = [
        make_entry(
            label=f"add{width}_batch{batch}",
            engine="double",
            params=params.name,
            batch_width=batch,
            bootstraps_per_sec=schedules[width].gate_count / per_word,
            baseline_bootstraps_per_sec=schedules[width].gate_count
            / eager_per_word[width],
        )
        for (width, batch), per_word in seconds_per_word.items()
    ]
    path = write_bench_json("circuit_levels", entries)
    print(f"[written to {path}]")
    return measured


def test_circuit_level_speedup(record_result):
    measured = run(record_result)

    # Acceptance criterion: >= 4x on a 32-bit add at batch width 16.  CI
    # shared runners are timing-noisy, so the gate is env-overridable
    # (locally the full bar applies; typical local speedup is >> 4x).
    minimum = float(os.environ.get("CIRCUIT_SPEEDUP_MIN", "4.0"))
    assert measured[(GATE_WIDTH, GATE_BATCH)] >= minimum, (
        f"levelized 32-bit add at batch 16 is only "
        f"{measured[(GATE_WIDTH, GATE_BATCH)]:.1f}x the eager path "
        f"(required {minimum}x)"
    )
    # Level parallelism alone (batch 1) must never make things slower
    # (same noisy-runner override story as the main bar).
    batch1_minimum = float(os.environ.get("CIRCUIT_BATCH1_MIN", "0.9"))
    assert measured[(GATE_WIDTH, 1)] >= batch1_minimum

"""Batched bootstrapping throughput: bootstraps/sec vs batch size.

The paper's accelerator wins by amortising blind-rotation work across many
concurrent bootstrappings; the pure-Python functional simulator has the same
problem in miniature — at batch 1 every gate pays the full NumPy dispatch
overhead of ``n`` external products, so the benchmark measures Python, not
arithmetic.  :func:`repro.tfhe.bootstrap.gate_bootstrap_batch` runs the whole
batch through each vectorised step at once, so the dispatch cost is paid once
per *batch* instead of once per *ciphertext*.

This bench reports bootstraps/sec for batch sizes 1, 8, 64 and 256 on the
double-precision FFT engine (the TFHE-library baseline) under the reduced test
parameters, checks the batched outputs stay bit-identical to the sequential
path, and asserts the headline claim: at batch 64 the engine delivers at least
5× the single-ciphertext rate.

Results land in ``results/batch_throughput.txt`` and schema-consistent
``results/BENCH_batch_throughput.json`` (see ``tools/bench.py``).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_batch_throughput.py -q -s
"""

from __future__ import annotations

import functools
import os
import time

import numpy as np
import pytest

from repro.tfhe.bootstrap import gate_bootstrap, gate_bootstrap_batch
from repro.tfhe.gates import MU, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.lwe import LweBatch
from repro.tfhe.params import TEST_TINY
from repro.tfhe.transform import DoubleFFTNegacyclicTransform
from repro.utils.benchio import make_entry, write_bench_json

BATCH_SIZES = (1, 8, 64, 256)


@functools.lru_cache(maxsize=1)
def _double_fft_backend():
    params = TEST_TINY
    transform = DoubleFFTNegacyclicTransform(params.N)
    secret, cloud = generate_keys(params, transform, unroll_factor=1, rng=11)
    return params, secret, cloud


@pytest.fixture(scope="module")
def double_fft_backend():
    return _double_fft_backend()


def _bootstrap_batch(cloud, batch: LweBatch) -> LweBatch:
    return gate_bootstrap_batch(
        batch, int(MU), cloud.blind_rotator, cloud.keyswitch_key, cloud.params
    )


def _measure_rate(cloud, batch: LweBatch, min_seconds: float = 0.4) -> float:
    """Bootstraps per second, timed over enough repetitions to be stable."""
    _bootstrap_batch(cloud, batch)  # warm-up
    repetitions = 0
    start = time.perf_counter()
    while True:
        _bootstrap_batch(cloud, batch)
        repetitions += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and repetitions >= 3:
            return repetitions * batch.batch_size / elapsed


def run(record_result=None):
    """Measure bootstraps/sec per batch size; write the schema JSON."""
    params, secret, cloud = _double_fft_backend()
    rng = np.random.default_rng(12)
    base = [encrypt_bit(secret, int(b), rng) for b in rng.integers(0, 2, max(BATCH_SIZES))]

    rates = {}
    for size in BATCH_SIZES:
        batch = LweBatch.from_samples(base[:size])
        rates[size] = _measure_rate(cloud, batch)

    lines = [
        "Batched gate bootstrapping, double-FFT engine, "
        f"{params.name} (n={params.n}, N={params.N})",
        f"{'batch':>6}  {'bootstraps/s':>14}  {'speedup':>8}",
    ]
    for size in BATCH_SIZES:
        lines.append(
            f"{size:>6}  {rates[size]:>14.1f}  {rates[size] / rates[1]:>7.1f}x"
        )
    if record_result is not None:
        record_result("batch_throughput", "\n".join(lines))
    else:
        print("\n".join(lines))

    entries = [
        make_entry(
            label=f"batch{size}",
            engine="double",
            params=params.name,
            batch_width=size,
            bootstraps_per_sec=rates[size],
            baseline_bootstraps_per_sec=rates[1],
        )
        for size in BATCH_SIZES
    ]
    path = write_bench_json("batch_throughput", entries)
    print(f"[written to {path}]")
    return rates


def test_batched_bootstraps_per_second(record_result):
    rates = run(record_result)

    # Acceptance criterion: >= 5x bootstraps/sec at batch 64 vs batch 1.
    # Shared CI runners are noisy, so the gate is overridable from the
    # environment (the CI workflow relaxes it; locally the full bar applies —
    # typical local speedup is ~20x).
    minimum = float(os.environ.get("BATCH_SPEEDUP_MIN", "5.0"))
    assert rates[64] >= minimum * rates[1], (
        f"batch=64 rate {rates[64]:.1f}/s is below {minimum}x "
        f"the batch=1 rate {rates[1]:.1f}/s"
    )
    # Larger batches should not be slower than modest ones.
    assert rates[256] >= 0.8 * rates[8]


def test_batched_results_are_bit_identical(double_fft_backend):
    _, secret, cloud = double_fft_backend
    rng = np.random.default_rng(13)
    samples = [encrypt_bit(secret, int(b), rng) for b in rng.integers(0, 2, 64)]
    batch = LweBatch.from_samples(samples)
    out = _bootstrap_batch(cloud, batch)
    for i, sample in enumerate(samples):
        ref = gate_bootstrap(
            sample, int(MU), cloud.blind_rotator, cloud.keyswitch_key, cloud.params
        )
        assert np.array_equal(out.a[i], ref.a)
        assert int(out.b[i]) == int(ref.b)

"""Table 2: power and area of MATCHA at 2 GHz (16 nm)."""

import pytest

from repro.analysis.comparison import render_table2
from repro.arch.energy import matcha_area_power_table


def test_table2_area_power(benchmark, record_result):
    envelope = benchmark(matcha_area_power_table)
    # Paper totals: 39.98 W and 36.96 mm^2.
    assert envelope.total_power_w == pytest.approx(39.98, abs=0.02)
    assert envelope.total_area_mm2 == pytest.approx(36.96, abs=0.05)
    record_result("table2_area_power", render_table2())


def test_table2_ablation_ep_core_count(benchmark, record_result):
    """Ablation: how power/area scale with the number of pipeline pairs."""
    from repro.utils.tables import format_table

    def build_rows():
        rows = []
        for cores in (2, 4, 8, 16):
            envelope = matcha_area_power_table(ep_cores=cores, tgsw_clusters=cores)
            rows.append(
                [cores, f"{envelope.total_power_w:.2f}", f"{envelope.total_area_mm2:.2f}"]
            )
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        ["EP cores / TGSW clusters", "power (W)", "area (mm^2)"],
        rows,
        title="Table 2 ablation: scaling the number of bootstrapping pipelines.",
    )
    record_result("table2_ablation", text)

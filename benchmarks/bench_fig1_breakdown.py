"""Figure 1: latency breakdown of TFHE gates (gate / other / IFFT / FFT)."""

from repro.analysis.breakdown import (
    gate_latency_breakdown,
    measure_gate_breakdown,
    render_figure1,
)
from repro.tfhe.params import TEST_SMALL


def test_fig1_breakdown_cost_model(benchmark, record_result):
    """Deterministic op-count breakdown at the paper's 110-bit parameters."""
    breakdowns = benchmark(gate_latency_breakdown)
    nand = next(b for b in breakdowns if b.gate == "nand")
    # Paper: bootstrapping ~99 % of the gate, FFT+IFFT ~80 % of the bootstrapping.
    assert nand.bootstrap_fraction > 0.95
    assert 0.6 <= nand.transform_fraction_of_bootstrap <= 0.95
    record_result("fig1_breakdown_model", render_figure1(breakdowns))


def test_fig1_breakdown_measured(benchmark, record_result):
    """Wall-clock breakdown measured on the functional simulator (reduced ring)."""
    measured = benchmark.pedantic(
        lambda: measure_gate_breakdown(TEST_SMALL, gate="nand", rng=0), rounds=1, iterations=1
    )
    pct = measured.percentages()
    text = (
        "Figure 1 (measured on the functional simulator, test-small parameters)\n"
        f"gate %  : {pct['gate']:.1f}\n"
        f"other % : {pct['other']:.1f}\n"
        f"IFFT %  : {pct['ifft']:.1f}\n"
        f"FFT %   : {pct['fft']:.1f}\n"
        f"bootstrapping fraction: {measured.bootstrap_fraction * 100:.1f}%"
    )
    assert measured.bootstrap_fraction > 0.9
    record_result("fig1_breakdown_measured", text)

"""Fused external-product kernel: bootstraps/sec vs the pre-fusion path.

The PR-4 tentpole rewrites the blind-rotation hot loop as one fused kernel
per external product — all ``(k+1)`` blocks gadget-decomposed into a single
digit stack, **one** stacked forward, one ``spectrum_contract`` against the
packed ``(rows, k+1, N/2)`` key tensor, **one** stacked backward, the
``(X^p − 1)·ACC`` rotate-and-subtract fused straight into the decomposition's
offset buffer, and all scratch staged through a reusable
:class:`~repro.tfhe.tgsw.BootstrapWorkspace`.

This bench measures gate bootstrapping throughput (double-FFT engine,
test-tiny parameters) for the fused path against a **verbatim reproduction of
the pre-PR implementation**: the historical per-row accumulator rotation, the
per-digit-plane external product (one forward per decomposed plane, one
backward per output column, a Python ``rows × (k+1)`` mul/add double loop),
the per-digit-level key switch and the historical double-FFT engine
``forward``/``backward`` bodies.  Both paths are asserted **bit-identical**
before any number is reported.

Acceptance gate: >= 3x single-stream bootstraps/sec (override with
``EP_SPEEDUP_MIN``; CI shared runners are timing-noisy) and a batch-64
improvement >= the ``EP_BATCH_SPEEDUP_MIN`` floor (default 1.1x).  Results
land in ``results/external_product.txt`` and schema-consistent
``results/BENCH_external_product.json`` (see ``tools/bench.py``).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_external_product.py -q -s
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.tfhe.bootstrap import CmuxBlindRotator, modswitch_batch, modswitch_sample
from repro.tfhe.gates import MU
from repro.tfhe.keys import generate_keys
from repro.tfhe.keyswitch import (
    keyswitch_apply_batch_reference,
    keyswitch_apply_reference,
)
from repro.tfhe.lwe import LweBatch, gate_message, lwe_encrypt
from repro.tfhe.params import TEST_TINY
from repro.tfhe.tlwe import (
    tlwe_batch_rotate,
    tlwe_batch_sample_extract,
    tlwe_batch_trivial,
    tlwe_rotate,
    tlwe_sample_extract,
    tlwe_trivial,
)
from repro.tfhe.transform import DoubleFFTNegacyclicTransform
from repro.utils.benchio import make_entry, write_bench_json

SINGLE_STREAM_SAMPLES = 24
BATCH_WIDTH = 64
BEST_OF = 3


class _ReferenceDoubleEngine(DoubleFFTNegacyclicTransform):
    """The pre-PR double-FFT ``forward``/``backward`` bodies, verbatim.

    The fused kernel's engine now folds the transform normalisation into the
    twist tables, rounds in the complex domain and calls the pocketfft
    gufuncs directly; this subclass restores the historical implementation
    (bit-identical outputs, historical cost) so the baseline measurement does
    not silently profit from this PR's engine work.
    """

    def forward(self, coeffs):
        self.stats.forward_calls += 1
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        half = self._half
        folded = (coeffs[..., :half] + 1j * coeffs[..., half:]) * self._twist
        return np.fft.ifft(folded, axis=-1) * half

    def backward(self, spectrum):
        self.stats.backward_calls += 1
        half = self._half
        spectrum = np.asarray(spectrum, dtype=np.complex128)
        folded = np.fft.fft(spectrum, axis=-1) / half
        folded = folded * self._untwist
        coeffs = np.empty(spectrum.shape[:-1] + (self.degree,), dtype=np.float64)
        coeffs[..., :half] = folded.real
        coeffs[..., half:] = folded.imag
        return np.round(coeffs).astype(np.int64)


def _fused_bootstrap(context, params, rotator, sample):
    from repro.tfhe.bootstrap import gate_bootstrap

    return gate_bootstrap(sample, int(MU), rotator, context.keyswitch_key, params)


def _reference_bootstrap(context, params, rotator, sample):
    """The complete pre-fusion gate bootstrapping, step by step."""
    test_vector = np.full(params.N, np.int32(int(MU)), dtype=np.int32)
    barb, bara = modswitch_sample(sample, params.N)
    accumulator = tlwe_trivial(test_vector, params.k)
    if barb != 0:
        accumulator = tlwe_rotate(accumulator, -barb)
    accumulator = rotator.rotate_reference(accumulator, bara)
    extracted = tlwe_sample_extract(accumulator, index=0)
    return keyswitch_apply_reference(context.keyswitch_key, extracted)


def _reference_bootstrap_batch(context, params, rotator, batch):
    test_vector = np.full(params.N, np.int32(int(MU)), dtype=np.int32)
    barb, bara = modswitch_batch(batch, params.N)
    accumulators = tlwe_batch_trivial(test_vector, params.k, batch.batch_size)
    accumulators = tlwe_batch_rotate(accumulators, -barb)
    accumulators = rotator.rotate_batch_reference(accumulators, bara)
    extracted = tlwe_batch_sample_extract(accumulators, index=0)
    return keyswitch_apply_batch_reference(context.keyswitch_key, extracted)


def _best_of(measure, repeats=BEST_OF):
    """Minimum wall-clock of ``repeats`` runs (the standard noise filter)."""
    return min(measure() for _ in range(repeats))


def run(record_result=None):
    """Measure fused vs pre-fusion throughput; returns (entries, lines)."""
    params = TEST_TINY
    engine = DoubleFFTNegacyclicTransform(params.N)
    secret, cloud = generate_keys(params, engine, unroll_factor=1, rng=77)
    context = cloud.default_context()
    fused = context.rotator
    reference = CmuxBlindRotator(
        fused.bootstrapping_key, _ReferenceDoubleEngine(params.N)
    )

    samples = [
        lwe_encrypt(secret.lwe_key, gate_message(i % 2), rng=1000 + i)
        for i in range(SINGLE_STREAM_SAMPLES)
    ]
    batch = LweBatch.from_samples(
        [
            lwe_encrypt(secret.lwe_key, gate_message(i % 2), rng=2000 + i)
            for i in range(BATCH_WIDTH)
        ]
    )

    # -- bit-identity before any timing -------------------------------------
    fused_out = [_fused_bootstrap(context, params, fused, s) for s in samples]
    ref_out = [_reference_bootstrap(context, params, reference, s) for s in samples]
    for got, want in zip(fused_out, ref_out):
        assert np.array_equal(got.a, want.a)
        assert np.int32(got.b) == np.int32(want.b)
    fused_batch_out = context.bootstrap_batch(batch)
    ref_batch_out = _reference_bootstrap_batch(context, params, reference, batch)
    assert np.array_equal(fused_batch_out.a, ref_batch_out.a)
    assert np.array_equal(fused_batch_out.b, ref_batch_out.b)

    # -- single-stream ------------------------------------------------------
    def time_single(rotator, bootstrap):
        def measure():
            start = time.perf_counter()
            for sample in samples:
                bootstrap(context, params, rotator, sample)
            return time.perf_counter() - start

        return measure

    fused_seconds = _best_of(time_single(fused, _fused_bootstrap))
    ref_seconds = _best_of(time_single(reference, _reference_bootstrap))
    fused_bs = SINGLE_STREAM_SAMPLES / fused_seconds
    ref_bs = SINGLE_STREAM_SAMPLES / ref_seconds

    # -- batch-64 ------------------------------------------------------------
    def time_batch(run_batch):
        def measure():
            start = time.perf_counter()
            run_batch()
            return time.perf_counter() - start

        return measure

    fused_batch_seconds = _best_of(time_batch(lambda: context.bootstrap_batch(batch)))
    ref_batch_seconds = _best_of(
        time_batch(lambda: _reference_bootstrap_batch(context, params, reference, batch))
    )
    fused_batch_bs = BATCH_WIDTH / fused_batch_seconds
    ref_batch_bs = BATCH_WIDTH / ref_batch_seconds

    entries = [
        make_entry(
            "single_stream", "double", params.name, 1, fused_bs, ref_bs
        ),
        make_entry(
            "batch", "double", params.name, BATCH_WIDTH, fused_batch_bs, ref_batch_bs
        ),
    ]

    lines = [
        "Fused external product vs pre-fusion path, double-FFT engine, "
        f"{params.name} (n={params.n}, N={params.N}, rows={(params.k + 1) * params.l})",
        "",
        f"{'mode':>14} {'fused bs/s':>11} {'pre-PR bs/s':>12} {'speedup':>8}",
        f"{'single':>14} {fused_bs:>11.1f} {ref_bs:>12.1f} {fused_bs / ref_bs:>7.2f}x",
        f"{'batch-' + str(BATCH_WIDTH):>14} {fused_batch_bs:>11.1f} "
        f"{ref_batch_bs:>12.1f} {fused_batch_bs / ref_batch_bs:>7.2f}x",
        "",
        "fused = one digit stack + one stacked forward + spectrum_contract + "
        "one stacked backward per external product, rotate-and-subtract fused "
        "into the decomposition, workspace-reused scratch; pre-PR = verbatim "
        "pre-fusion implementation (per-plane transforms, materialised "
        "rotation, per-level keyswitch, historical engine bodies).  Outputs "
        "asserted bit-identical before timing; best-of-" + str(BEST_OF) + " timings.",
    ]
    if record_result is not None:
        record_result("external_product", "\n".join(lines))

    path = write_bench_json("external_product", entries)
    print(f"[written to {path}]")
    return entries, lines


def test_fused_external_product_speedup(record_result):
    entries, _ = run(record_result)
    single = next(e for e in entries if e["label"] == "single_stream")
    batch = next(e for e in entries if e["label"] == "batch")

    minimum = float(os.environ.get("EP_SPEEDUP_MIN", "3.0"))
    batch_minimum = float(os.environ.get("EP_BATCH_SPEEDUP_MIN", "1.1"))
    assert single["speedup"] >= minimum, (
        f"fused single-stream bootstrapping is only {single['speedup']:.2f}x "
        f"the pre-fusion path (required {minimum}x)"
    )
    assert batch["speedup"] >= batch_minimum, (
        f"fused batch-{BATCH_WIDTH} bootstrapping is only "
        f"{batch['speedup']:.2f}x the pre-fusion path (required {batch_minimum}x)"
    )

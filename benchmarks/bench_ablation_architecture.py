"""Architecture ablations on the cycle model (design choices called out in DESIGN.md).

Three sweeps around the Figure 7 design point, all evaluated at the paper's
110-bit parameters with the MATCHA platform model:

* number of butterfly cores per FFT/IFFT core,
* HBM bandwidth (the bootstrapping-key stream),
* disabling the TGSW-cluster/EP-core overlap (the "no pipeline" CPU-style flow).
"""

from repro.arch.architecture import matcha_architecture
from repro.arch.gate_compiler import compile_gate_dfg
from repro.arch.scheduler import ListScheduler
from repro.platforms.matcha import MatchaPlatform
from repro.tfhe.params import PAPER_110BIT
from repro.utils.tables import format_table

M = 3  # MATCHA's sweet spot


def _latency_ms(architecture) -> float:
    dfg = compile_gate_dfg(PAPER_110BIT, unroll_factor=M)
    return ListScheduler(architecture).schedule(dfg).latency_seconds * 1e3


def test_ablation_butterfly_cores(benchmark, record_result):
    def sweep():
        rows = []
        for butterflies in (32, 64, 128, 256):
            arch = matcha_architecture(butterfly_cores_per_fft=butterflies)
            rows.append([butterflies, f"{_latency_ms(arch):.3f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    latencies = [float(r[1]) for r in rows]
    # More butterfly cores never hurts, with diminishing returns.
    assert latencies == sorted(latencies, reverse=True)
    record_result(
        "ablation_butterfly_cores",
        format_table(
            ["butterfly cores per FFT core", "gate latency (ms, m=3)"],
            rows,
            title="Ablation: FFT-core width.",
        ),
    )


def test_ablation_hbm_bandwidth(benchmark, record_result):
    def sweep():
        rows = []
        for bandwidth_gb in (160, 320, 640, 1280):
            platform = MatchaPlatform(
                PAPER_110BIT, hbm_bandwidth_bytes_per_s=bandwidth_gb * 1e9
            )
            report = platform.report(M)
            rows.append(
                [
                    bandwidth_gb,
                    f"{report.gate_latency_ms:.3f}",
                    f"{report.throughput_gates_per_s:.0f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    latencies = [float(r[1]) for r in rows]
    throughputs = [float(r[2]) for r in rows]
    # More bandwidth never meaningfully hurts (the greedy list scheduler can
    # wobble by a few percent once HBM stops being the critical resource).
    for slower, faster in zip(latencies, latencies[1:]):
        assert faster <= slower * 1.10
    for lower, higher in zip(throughputs, throughputs[1:]):
        assert higher >= lower * 0.90
    # Below the design point the stream clearly throttles the accelerator.
    assert latencies[0] > 1.5 * latencies[2]
    record_result(
        "ablation_hbm_bandwidth",
        format_table(
            ["HBM bandwidth (GB/s)", "gate latency (ms, m=3)", "throughput (gates/s)"],
            rows,
            title="Ablation: bootstrapping-key streaming bandwidth.",
        ),
    )


def test_ablation_pipeline_overlap(benchmark, record_result):
    """Quantifies the benefit of the Figure 6 pipeline (the paper's key argument
    for why aggressive BKU works on MATCHA but not on the CPU)."""
    from repro.arch.ops import OpType
    from repro.core.pipeline import PipelineStageTimes, schedule_bootstrapping

    platform = MatchaPlatform(PAPER_110BIT)

    def sweep():
        rows = []
        for m in (2, 3, 4):
            schedule = platform.schedule(m)
            iterations = -(-PAPER_110BIT.n // m)
            tgsw = (
                schedule.cycles_by_op.get(OpType.TGSW_SCALE, 0.0)
                + schedule.cycles_by_op.get(OpType.TGSW_ADD, 0.0)
            ) / iterations
            ep = (
                schedule.cycles_by_op.get(OpType.IFFT, 0.0)
                + schedule.cycles_by_op.get(OpType.FFT, 0.0)
                + schedule.cycles_by_op.get(OpType.POINTWISE_MAC, 0.0)
                + schedule.cycles_by_op.get(OpType.DECOMPOSE, 0.0)
            ) / iterations
            times = PipelineStageTimes(tgsw, ep)
            with_pipe = schedule_bootstrapping(iterations, times, pipelined=True).total_cycles
            without = schedule_bootstrapping(iterations, times, pipelined=False).total_cycles
            rows.append([m, f"{without / with_pipe:.2f}x"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(float(r[1].rstrip("x")) >= 1.0 for r in rows)
    record_result(
        "ablation_pipeline_overlap",
        format_table(
            ["m", "blind-rotate speedup from pipelining"],
            rows,
            title="Ablation: TGSW-cluster / EP-core overlap (Figure 6).",
        ),
    )

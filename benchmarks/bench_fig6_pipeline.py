"""Figure 6: the pipelined TGSW-cluster / EP-core datapath."""

from repro.arch.ops import OpType
from repro.core.pipeline import PipelineStageTimes, schedule_bootstrapping
from repro.platforms.matcha import MatchaPlatform
from repro.tfhe.params import PAPER_110BIT
from repro.utils.tables import format_table


def _stage_times_from_schedule(platform, m):
    schedule = platform.schedule(m)
    iterations = -(-PAPER_110BIT.n // m)
    tgsw = (
        schedule.cycles_by_op.get(OpType.TGSW_SCALE, 0.0)
        + schedule.cycles_by_op.get(OpType.TGSW_ADD, 0.0)
    ) / iterations
    ep = (
        schedule.cycles_by_op.get(OpType.IFFT, 0.0)
        + schedule.cycles_by_op.get(OpType.FFT, 0.0)
        + schedule.cycles_by_op.get(OpType.POINTWISE_MAC, 0.0)
        + schedule.cycles_by_op.get(OpType.DECOMPOSE, 0.0)
    ) / iterations
    return PipelineStageTimes(tgsw_cluster_cycles=tgsw, ep_core_cycles=ep), iterations


def test_fig6_pipeline_balance(benchmark, record_result):
    platform = MatchaPlatform(PAPER_110BIT)

    def build_rows():
        rows = []
        for m in (1, 2, 3, 4):
            times, iterations = _stage_times_from_schedule(platform, m)
            pipelined = schedule_bootstrapping(iterations, times, pipelined=True)
            sequential = schedule_bootstrapping(iterations, times, pipelined=False)
            rows.append(
                [
                    m,
                    f"{times.tgsw_cluster_cycles:.0f}",
                    f"{times.ep_core_cycles:.0f}",
                    f"{times.imbalance:.2f}",
                    f"{pipelined.speedup_over_sequential:.2f}x",
                    f"{sequential.total_cycles / 2.0e6:.3f}",
                    f"{pipelined.total_cycles / 2.0e6:.3f}",
                ]
            )
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        [
            "m",
            "TGSW-cluster cycles/iter",
            "EP-core cycles/iter",
            "imbalance",
            "pipeline speedup",
            "sequential blind-rotate (ms)",
            "pipelined blind-rotate (ms)",
        ],
        rows,
        title="Figure 6: overlapping bundle construction with the external product.",
    )
    record_result("fig6_pipeline", text)
    # The pipeline must never be slower than the sequential CPU-style flow.
    assert all(float(r[4].rstrip("x")) >= 1.0 for r in rows)

"""Figure 11: NAND gate throughput per Watt across platforms and BKU factors.

Paper reference points: FPGA and ASIC improve on the CPU thanks to their low
power; the GPU's best efficiency stays below the ASIC's; MATCHA improves on the
ASIC by 6.3x (our model reproduces the win with a larger margin; see
EXPERIMENTS.md).
"""

from repro.analysis.comparison import platform_comparison, render_figure11


def test_fig11_throughput_per_watt(benchmark, record_result):
    result = benchmark.pedantic(platform_comparison, rounds=1, iterations=1)

    cpu_m1 = result.at("CPU", 1).throughput_per_watt
    fpga = result.at("FPGA", 1).throughput_per_watt
    asic = result.at("ASIC", 1).throughput_per_watt
    gpu_best = result.best("GPU").throughput_per_watt
    matcha_best = result.best("MATCHA").throughput_per_watt

    # Section 6 orderings: FPGA and ASIC beat the CPU; ASIC beats the GPU;
    # MATCHA beats everything.
    assert fpga > cpu_m1
    assert asic > fpga
    assert gpu_best < asic
    assert matcha_best > 3.0 * asic  # paper: 6.3x

    text = render_figure11(result)
    text += (
        f"\nMATCHA best vs ASIC: {result.matcha_vs_asic_throughput_per_watt:.1f}x (paper: 6.3x)"
        f"\nGPU best vs ASIC: {gpu_best / asic:.2f}x (paper: ~0.58x)"
    )
    record_result("fig11_throughput_per_watt", text)

"""Figures 4-5: bootstrapping-key unrolling truth table and bundle construction."""

from repro.core.bku import (
    UnrolledBlindRotator,
    bootstrapping_key_size_bytes,
    generate_unrolled_bootstrapping_key,
    indicator_message,
)
from repro.tfhe.keys import generate_secret_key
from repro.tfhe.params import PAPER_110BIT, TEST_TINY
from repro.tfhe.transform import NaiveNegacyclicTransform
from repro.utils.tables import format_table
import numpy as np


def test_fig4_truth_table(benchmark, record_result):
    """Figure 4: which indicator (and therefore which key) each bit pattern selects."""
    benchmark(lambda: [indicator_message([1, 0], p) for p in range(1, 4)])
    rows = []
    for s1 in (0, 1):
        for s2 in (0, 1):
            selected = [
                pattern
                for pattern in range(1, 4)
                if indicator_message([s1, s2], pattern) == 1
            ]
            term = {1: "X^-a(2i-1)", 2: "X^-a(2i)", 3: "X^-a(2i-1)-a(2i)"}
            rows.append(
                [s1, s2, selected[0] if selected else 0, term.get(selected[0], "1") if selected else "1"]
            )
    text = format_table(
        ["s_2i-1", "s_2i", "selected key", "rotation term"],
        rows,
        title="Figure 4: the truth table of X^(-a_2i-1 s_2i-1 - a_2i s_2i).",
    )
    record_result("fig4_truth_table", text)


def test_fig5_bundle_construction(benchmark, record_result):
    """Times one bundle construction + external product at m = 2 (tiny ring)."""
    params = TEST_TINY
    transform = NaiveNegacyclicTransform(params.N)
    secret = generate_secret_key(params, rng=1)
    key = generate_unrolled_bootstrapping_key(secret, transform, 2, rng=2)
    rotator = UnrolledBlindRotator(key, transform)
    bara = np.arange(params.n, dtype=np.int64) % (2 * params.N)

    bundle = benchmark(rotator.build_bundle, key.groups[0], bara)
    assert bundle.rows == (params.k + 1) * params.l

    rows = [
        [m, (1 << m) - 1, f"{bootstrapping_key_size_bytes(PAPER_110BIT, m) / 2**20:.1f} MiB"]
        for m in (1, 2, 3, 4, 5)
    ]
    text = format_table(
        ["m", "TGSW keys per group", "bootstrapping key size (110-bit params)"],
        rows,
        title="Figure 5: BKU key material grows as 2^m - 1 per group of m key bits.",
    )
    record_result("fig5_bku_bundle", text)
